package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/errgen"
	"repro/internal/knowledge"
	"repro/internal/table"
)

// Flights generates the Flights benchmark: 2,376 tuples over 7 attributes
// with ~34.5% cell errors, the dirtiest dataset in Table II. The real
// dataset aggregates departure/arrival times for the same flight scraped
// from multiple travel websites, so the clean data contains several rows
// per flight and the Flight attribute functionally determines all four
// time attributes.
func Flights(n int, seed int64) *Bench {
	if n <= 0 {
		n = 2376
	}
	rng := rand.New(rand.NewSource(seed))
	attrs := []string{
		"Source", "Flight", "SchedDepTime", "ActDepTime", "SchedArrTime", "ActArrTime", "Gate",
	}
	clean := table.NewWithCapacity("Flights", attrs, n)

	sources := []string{"aa", "orbitz", "flightview", "travelocity", "flightaware", "mytrip"}
	numFlights := n/len(sources) + 1

	type flightInfo struct {
		id                                 string
		schedDep, actDep, schedArr, actArr string
		gate                               string
	}
	mkTime := func() string {
		h := 1 + rng.Intn(12)
		m := rng.Intn(12) * 5
		ampm := []string{"a.m.", "p.m."}[rng.Intn(2)]
		return fmt.Sprintf("%d:%02d %s", h, m, ampm)
	}
	flights := make([]flightInfo, numFlights)
	for i := range flights {
		src := pick(rng, airports)
		dst := pick(rng, airports)
		for dst == src {
			dst = pick(rng, airports)
		}
		flights[i] = flightInfo{
			id:       fmt.Sprintf("%s-%d-%s-%s", pick(rng, airlines), 100+rng.Intn(8900), src, dst),
			schedDep: mkTime(), actDep: mkTime(), schedArr: mkTime(), actArr: mkTime(),
			gate: fmt.Sprintf("%d", 1+rng.Intn(60)),
		}
	}

	for i := 0; i < n; i++ {
		f := flights[i/len(sources)%numFlights]
		clean.MustAppendRow([]string{
			sources[i%len(sources)], f.id, f.schedDep, f.actDep, f.schedArr, f.actArr, f.gate,
		})
	}

	fdPairs := [][2]int{
		{1, 2}, {1, 3}, {1, 4}, {1, 5}, // Flight -> each time
	}
	dirty, log := errgen.Inject(clean, errgen.Spec{
		Rates: map[errgen.Type]float64{
			errgen.Missing:          0.16,
			errgen.Typo:             0.07,
			errgen.PatternViolation: 0.06,
			errgen.RuleViolation:    0.04,
			errgen.Outlier:          0.015,
		},
		NumericCols: []int{6}, // Gate
		FDPairs:     fdPairs,
		Seed:        seed + 1,
	})

	// The paper notes KATARA finds no relevant knowledge base for Flights.
	return &Bench{Name: "Flights", Clean: clean, Dirty: dirty, Log: log,
		KB: knowledge.NewBase(), FDPairs: fdPairs}
}
