package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/errgen"
	"repro/internal/knowledge"
	"repro/internal/table"
)

// Hospital generates the Hospital benchmark: 1,000 tuples over 20
// attributes with ~4.8% cell errors and no missing values (Table II).
// Its signature dependencies are MeasureCode -> {MeasureName, Condition}
// (the paper's Fig. 4 example), ZipCode -> City, and City -> State.
func Hospital(n int, seed int64) *Bench {
	if n <= 0 {
		n = 1000
	}
	rng := rand.New(rand.NewSource(seed))
	attrs := []string{
		"ProviderNumber", "HospitalName", "Address", "City", "State",
		"ZipCode", "CountyName", "PhoneNumber", "HospitalType",
		"HospitalOwner", "EmergencyService", "Condition", "MeasureCode",
		"MeasureName", "Score", "Sample", "StateAvg", "Quarter", "Year",
		"Rating",
	}
	clean := table.NewWithCapacity("Hospital", attrs, n)

	zips := sortedKeys(zipCity)
	codes := make([]string, 0, len(hospitalMeasures))
	for c := range hospitalMeasures {
		codes = append(codes, c)
	}
	sortStrings(codes)
	hospSuffix := []string{"General Hospital", "Memorial Hospital", "Regional Medical Center", "Community Hospital"}
	streets := []string{"Main St", "Oak Ave", "Washington Blvd", "Park Rd", "Lake Dr", "Church St"}

	for i := 0; i < n; i++ {
		zip := pick(rng, zips)
		city := zipCity[zip]
		state := cityState[city]
		code := pick(rng, codes)
		measure := hospitalMeasures[code]
		score := 55 + rng.Intn(45)
		row := []string{
			fmt.Sprintf("%05d", 10000+rng.Intn(80000)),
			city + " " + pick(rng, hospSuffix),
			fmt.Sprintf("%d %s", 100+rng.Intn(9800), pick(rng, streets)),
			city,
			state,
			zip,
			city + " County",
			fmt.Sprintf("%d%07d", 200+rng.Intn(700), rng.Intn(10000000)),
			pick(rng, hospitalTypes),
			pick(rng, hospitalOwners),
			[]string{"Yes", "No"}[rng.Intn(2)],
			measure[1],
			code,
			measure[0],
			fmt.Sprintf("%d%%", score),
			fmt.Sprintf("%d patients", 10+rng.Intn(490)),
			fmt.Sprintf("%d%%", 60+rng.Intn(35)),
			fmt.Sprintf("Q%d", 1+rng.Intn(4)),
			fmt.Sprintf("%d", 2010+rng.Intn(5)),
			fmt.Sprintf("%d", 1+rng.Intn(5)),
		}
		clean.MustAppendRow(row)
	}

	fdPairs := [][2]int{
		{12, 13}, // MeasureCode -> MeasureName
		{12, 11}, // MeasureCode -> Condition
		{5, 3},   // ZipCode -> City
		{3, 4},   // City -> State
	}
	dirty, log := errgen.Inject(clean, errgen.Spec{
		Rates: map[errgen.Type]float64{
			errgen.Typo:             0.013,
			errgen.PatternViolation: 0.013,
			errgen.Outlier:          0.011,
			errgen.RuleViolation:    0.011,
		},
		NumericCols: []int{18, 19}, // Year, Rating
		FDPairs:     fdPairs,
		Seed:        seed + 1,
	})

	kb := knowledge.NewBase()
	for city, state := range cityState {
		kb.AddEntities("City", city)
		kb.AddEntities("State", state)
	}
	for _, m := range hospitalMeasures {
		kb.AddEntities("Condition", m[1])
	}
	return &Bench{Name: "Hospital", Clean: clean, Dirty: dirty, Log: log, KB: kb, FDPairs: fdPairs}
}
