package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/errgen"
	"repro/internal/knowledge"
	"repro/internal/table"
)

// Tax generates the Tax benchmark (BART repository): by default 200,000
// tuples over 22 attributes with a very low error rate (~0.1%, Table II).
// It exists for the scalability evaluations (Fig. 7 and Fig. 8); call it
// with smaller n for subset sweeps. Zip -> City, City -> State, and
// State -> Rate are its signature dependencies (the paper's motivating
// example "Name determines Gender" appears here too).
func Tax(n int, seed int64) *Bench {
	if n <= 0 {
		n = 200000
	}
	rng := rand.New(rand.NewSource(seed))
	attrs := []string{
		"FName", "LName", "Gender", "AreaCode", "Phone", "City", "State",
		"Zip", "MaritalStatus", "HasChild", "Salary", "Rate", "SingleExemp",
		"MarriedExemp", "ChildExemp", "Education", "Occupation", "Employer",
		"YearsEmployed", "AccountType", "Email", "DOB",
	}
	clean := table.NewWithCapacity("Tax", attrs, n)

	zips := sortedKeys(zipCity)
	occupations := []string{"Engineer", "Teacher", "Nurse", "Accountant", "Manager", "Clerk", "Analyst", "Technician"}
	employers := []string{"Acme Corp", "Globex", "Initech", "Umbrella LLC", "Stark Industries", "Wayne Enterprises"}
	// Deterministic first-name -> gender, the paper's Fig. 1 dependency.
	genderOf := func(first string) string {
		if len(first)%2 == 0 {
			return "F"
		}
		return "M"
	}

	for i := 0; i < n; i++ {
		zip := pick(rng, zips)
		city := zipCity[zip]
		state := cityState[city]
		first := pick(rng, firstNames)
		salary := 20000 + rng.Intn(180000)
		clean.MustAppendRow([]string{
			first,
			pick(rng, lastNames),
			genderOf(first),
			fmt.Sprintf("%d", 200+rng.Intn(700)),
			fmt.Sprintf("%03d-%04d", 100+rng.Intn(900), rng.Intn(10000)),
			city,
			state,
			zip,
			pick(rng, maritalStatuses),
			[]string{"Y", "N"}[rng.Intn(2)],
			fmt.Sprintf("%d", salary),
			stateTaxRate[state],
			fmt.Sprintf("%d", 2000+500*rng.Intn(5)),
			fmt.Sprintf("%d", 4000+500*rng.Intn(5)),
			fmt.Sprintf("%d", 1000+250*rng.Intn(5)),
			pick(rng, educations),
			pick(rng, occupations),
			pick(rng, employers),
			fmt.Sprintf("%d", 1+rng.Intn(35)),
			[]string{"checking", "savings"}[rng.Intn(2)],
			fmt.Sprintf("%s.%d@example.com", first, rng.Intn(1000)),
			fmt.Sprintf("%d-%02d-%02d", 1950+rng.Intn(50), 1+rng.Intn(12), 1+rng.Intn(28)),
		})
	}

	fdPairs := [][2]int{
		{7, 5},  // Zip -> City
		{5, 6},  // City -> State
		{6, 11}, // State -> Rate
		{0, 2},  // FName -> Gender
	}
	dirty, log := errgen.Inject(clean, errgen.Spec{
		Rates: map[errgen.Type]float64{
			errgen.Missing:          0.0004,
			errgen.Typo:             0.0004,
			errgen.PatternViolation: 0.0004,
			errgen.Outlier:          0.0002,
			errgen.RuleViolation:    0.0002,
		},
		NumericCols: []int{10, 18}, // Salary, YearsEmployed
		FDPairs:     fdPairs,
		Seed:        seed + 1,
	})

	kb := knowledge.NewBase()
	for city, state := range cityState {
		kb.AddEntities("City", city)
		kb.AddEntities("State", state)
	}
	return &Bench{Name: "Tax", Clean: clean, Dirty: dirty, Log: log, KB: kb, FDPairs: fdPairs}
}
