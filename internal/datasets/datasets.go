// Package datasets provides seeded synthetic generators for the seven
// evaluation datasets of the paper's Table II: Hospital, Flights, Beers,
// Rayyan, Billionaire, Movies, and Tax. The real benchmark files are not
// redistributable offline, so each generator synthesizes a clean ground
// truth with the same schema flavor (attribute count, categorical/numeric
// mix, functional dependencies) and injects the five error types via
// internal/errgen at the per-type rates Table II reports. Each benchmark
// also carries the knowledge-base slice that KATARA and the simulated
// LLM's world knowledge consume (empty for the datasets where the paper
// notes KATARA finds no relevant KB).
package datasets

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/errgen"
	"repro/internal/knowledge"
	"repro/internal/table"
)

// Bench bundles one benchmark: dirty input, clean ground truth, the
// injection log, world knowledge, and the FD pairs used for injection.
type Bench struct {
	Name    string
	Clean   *table.Dataset
	Dirty   *table.Dataset
	Log     []errgen.Injection
	KB      *knowledge.Base
	FDPairs [][2]int
}

// ErrorRate returns the realized cell error rate of the benchmark, or an
// error when dirty and clean have drifted out of shape (possible once a
// Bench is assembled from external files rather than a generator).
func (b *Bench) ErrorRate() (float64, error) {
	r, err := table.ErrorRate(b.Dirty, b.Clean)
	if err != nil {
		return 0, fmt.Errorf("datasets: %s: %w", b.Name, err)
	}
	return r, nil
}

// Mask returns the ground-truth error mask, or an error on a dirty/clean
// shape mismatch.
func (b *Bench) Mask() ([][]bool, error) {
	m, err := table.ErrorMask(b.Dirty, b.Clean)
	if err != nil {
		return nil, fmt.Errorf("datasets: %s: %w", b.Name, err)
	}
	return m, nil
}

// Generator builds a benchmark with n tuples and a seed. n <= 0 selects
// the dataset's Table II default size.
type Generator func(n int, seed int64) *Bench

// Registry maps dataset names to generators, in Table II order.
func Registry() []struct {
	Name string
	Gen  Generator
} {
	return []struct {
		Name string
		Gen  Generator
	}{
		{"Hospital", Hospital},
		{"Flights", Flights},
		{"Beers", Beers},
		{"Rayyan", Rayyan},
		{"Billionaire", Billionaire},
		{"Movies", Movies},
		{"Tax", Tax},
	}
}

// ByName returns the generator for a dataset name (case-sensitive) or nil.
func ByName(name string) Generator {
	for _, e := range Registry() {
		if e.Name == name {
			return e.Gen
		}
	}
	return nil
}

// Names lists the registered dataset names.
func Names() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.Name)
	}
	return out
}

// ComparisonSet returns the six datasets of Table III (everything except
// the scalability-only Tax) at default sizes.
func ComparisonSet(seed int64) []*Bench {
	var out []*Bench
	for _, e := range Registry() {
		if e.Name == "Tax" {
			continue
		}
		out = append(out, e.Gen(0, seed))
	}
	return out
}

// pick returns a seeded random element of xs.
func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

// sortedKeys returns map keys sorted, for deterministic iteration.
func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sortStrings sorts in place; tiny wrapper to avoid importing sort at every
// generator site.
func sortStrings(xs []string) { sort.Strings(xs) }
