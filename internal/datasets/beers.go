package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/errgen"
	"repro/internal/knowledge"
	"repro/internal/table"
)

// Beers generates the Beers benchmark: 2,410 tuples over 11 attributes with
// ~13% cell errors dominated by pattern violations (Table II). BreweryID
// functionally determines BreweryName, BreweryCity, and BreweryState.
func Beers(n int, seed int64) *Bench {
	if n <= 0 {
		n = 2410
	}
	rng := rand.New(rand.NewSource(seed))
	attrs := []string{
		"ID", "BeerName", "Style", "ABV", "IBU", "Ounces",
		"BreweryID", "BreweryName", "BreweryCity", "BreweryState", "ServedIn",
	}
	clean := table.NewWithCapacity("Beers", attrs, n)

	cities := sortedKeys(cityState)
	type brewery struct{ name, city, state string }
	numBreweries := 80
	breweries := make([]brewery, numBreweries)
	for i := range breweries {
		city := cities[rng.Intn(len(cities))]
		breweries[i] = brewery{
			name:  fmt.Sprintf("%s %s Brewing Company", pick(rng, beerAdjectives), pick(rng, breweryNouns)),
			city:  city,
			state: cityState[city],
		}
	}

	for i := 0; i < n; i++ {
		b := rng.Intn(numBreweries)
		abv := 0.035 + rng.Float64()*0.06
		clean.MustAppendRow([]string{
			fmt.Sprintf("%d", 1000+i),
			fmt.Sprintf("%s %s", pick(rng, beerAdjectives), pick(rng, beerNouns)),
			pick(rng, beerStyles),
			fmt.Sprintf("%.3f", abv),
			fmt.Sprintf("%d", 10+rng.Intn(90)),
			[]string{"12.0", "16.0"}[rng.Intn(2)],
			fmt.Sprintf("%d", 100+b),
			breweries[b].name,
			breweries[b].city,
			breweries[b].state,
			[]string{"can", "bottle"}[rng.Intn(2)],
		})
	}

	fdPairs := [][2]int{
		{6, 7}, // BreweryID -> BreweryName
		{6, 8}, // BreweryID -> BreweryCity
		{6, 9}, // BreweryID -> BreweryState
	}
	dirty, log := errgen.Inject(clean, errgen.Spec{
		Rates: map[errgen.Type]float64{
			errgen.Missing:          0.009,
			errgen.PatternViolation: 0.07,
			errgen.Typo:             0.024,
			errgen.Outlier:          0.011,
			errgen.RuleViolation:    0.011,
		},
		NumericCols: []int{3, 4}, // ABV, IBU
		FDPairs:     fdPairs,
		Seed:        seed + 1,
	})

	// No relevant KB for Beers (KATARA scores zero in the paper).
	return &Bench{Name: "Beers", Clean: clean, Dirty: dirty, Log: log,
		KB: knowledge.NewBase(), FDPairs: fdPairs}
}
