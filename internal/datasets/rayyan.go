package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/errgen"
	"repro/internal/knowledge"
	"repro/internal/table"
)

// Rayyan generates the Rayyan benchmark: 1,000 bibliographic tuples over
// 11 attributes with ~29% cell errors, dominated by missing values
// (Table II). Journal functionally determines the ISSN and abbreviation.
func Rayyan(n int, seed int64) *Bench {
	if n <= 0 {
		n = 1000
	}
	rng := rand.New(rand.NewSource(seed))
	attrs := []string{
		"ArticleID", "Title", "Journal", "ISSN", "Volume", "Issue",
		"Pages", "Year", "Language", "JournalAbbrev", "CreatedAt",
	}
	clean := table.NewWithCapacity("Rayyan", attrs, n)

	jNames := sortedKeys(journals)
	issn := map[string]string{}
	for i, j := range jNames {
		issn[j] = fmt.Sprintf("%04d-%04d", 1000+i*37, 2000+i*53)
	}

	for i := 0; i < n; i++ {
		j := pick(rng, jNames)
		first := 100 + rng.Intn(900)
		year := 1995 + rng.Intn(25)
		clean.MustAppendRow([]string{
			fmt.Sprintf("%d", 50000+i),
			fmt.Sprintf("A %s %s in adults", pick(rng, paperTopics), pick(rng, paperSubjects)),
			j,
			issn[j],
			fmt.Sprintf("%d", 1+rng.Intn(60)),
			fmt.Sprintf("%d", 1+rng.Intn(12)),
			fmt.Sprintf("%d-%d", first, first+3+rng.Intn(20)),
			fmt.Sprintf("%d", year),
			pick(rng, languages),
			journals[j],
			fmt.Sprintf("%d-%02d-%02d", year, 1+rng.Intn(12), 1+rng.Intn(28)),
		})
	}

	fdPairs := [][2]int{
		{2, 3}, // Journal -> ISSN
		{2, 9}, // Journal -> JournalAbbrev
	}
	dirty, log := errgen.Inject(clean, errgen.Spec{
		Rates: map[errgen.Type]float64{
			errgen.Missing:          0.15,
			errgen.PatternViolation: 0.06,
			errgen.Typo:             0.032,
			errgen.Outlier:          0.028,
			errgen.RuleViolation:    0.02,
		},
		NumericCols: []int{4, 7}, // Volume, Year
		FDPairs:     fdPairs,
		Seed:        seed + 1,
	})

	// No relevant KB for Rayyan (KATARA scores zero in the paper).
	return &Bench{Name: "Rayyan", Clean: clean, Dirty: dirty, Log: log,
		KB: knowledge.NewBase(), FDPairs: fdPairs}
}
