package datasets

import (
	"math"
	"testing"

	"repro/internal/errgen"
	"repro/internal/table"
)

// tableII lists the expected shapes and approximate error rates of each
// benchmark (error-rate targets within a tolerance band; the injector's
// skip paths make exact rates stochastic).
var tableII = []struct {
	name     string
	gen      Generator
	rows     int
	attrs    int
	errRate  float64
	tol      float64
	defaultN bool
}{
	{"Hospital", Hospital, 1000, 20, 0.048, 0.02, true},
	{"Flights", Flights, 2376, 7, 0.345, 0.08, true},
	{"Beers", Beers, 2410, 11, 0.125, 0.04, true},
	{"Rayyan", Rayyan, 1000, 11, 0.29, 0.06, true},
	{"Billionaire", Billionaire, 2615, 22, 0.098, 0.03, true},
	{"Movies", Movies, 7390, 17, 0.05, 0.02, true},
}

func TestTableIIShapes(t *testing.T) {
	for _, tc := range tableII {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.gen(0, 1)
			if b.Dirty.NumRows() != tc.rows {
				t.Errorf("rows = %d, want %d", b.Dirty.NumRows(), tc.rows)
			}
			if b.Dirty.NumCols() != tc.attrs {
				t.Errorf("attrs = %d, want %d", b.Dirty.NumCols(), tc.attrs)
			}
			got, err := b.ErrorRate()
			if err != nil {
				t.Fatalf("ErrorRate: %v", err)
			}
			if math.Abs(got-tc.errRate) > tc.tol {
				t.Errorf("error rate = %.4f, want %.4f +/- %.3f", got, tc.errRate, tc.tol)
			}
		})
	}
}

func TestTaxShape(t *testing.T) {
	b := Tax(5000, 1) // small subset; default 200k is exercised in benches
	if b.Dirty.NumCols() != 22 {
		t.Errorf("Tax attrs = %d, want 22", b.Dirty.NumCols())
	}
	if b.Dirty.NumRows() != 5000 {
		t.Errorf("Tax rows = %d, want 5000", b.Dirty.NumRows())
	}
	rate, err := b.ErrorRate()
	if err != nil {
		t.Fatalf("ErrorRate: %v", err)
	}
	if rate <= 0 || rate > 0.01 {
		t.Errorf("Tax error rate = %v, want small nonzero", rate)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Hospital(200, 7)
	b := Hospital(200, 7)
	for i := 0; i < a.Dirty.NumRows(); i++ {
		for j := 0; j < a.Dirty.NumCols(); j++ {
			if a.Dirty.Value(i, j) != b.Dirty.Value(i, j) {
				t.Fatal("same seed must produce identical datasets")
			}
		}
	}
	c := Hospital(200, 8)
	same := true
	for i := 0; i < a.Dirty.NumRows() && same; i++ {
		for j := 0; j < a.Dirty.NumCols(); j++ {
			if a.Dirty.Value(i, j) != c.Dirty.Value(i, j) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestInjectionLogConsistent(t *testing.T) {
	for _, tc := range tableII {
		b := tc.gen(500, 3)
		mask, err := table.ErrorMask(b.Dirty, b.Clean)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, inj := range b.Log {
			if !mask[inj.Row][inj.Col] {
				t.Errorf("%s: logged injection (%d,%d) not in mask", tc.name, inj.Row, inj.Col)
			}
		}
	}
}

func TestHospitalFDsHold(t *testing.T) {
	b := Hospital(500, 2)
	// In CLEAN data the declared FDs must hold exactly.
	for _, p := range b.FDPairs {
		seen := map[string]string{}
		for i := 0; i < b.Clean.NumRows(); i++ {
			det := b.Clean.Value(i, p[0])
			dep := b.Clean.Value(i, p[1])
			if prev, ok := seen[det]; ok && prev != dep {
				t.Errorf("FD %s->%s violated in clean data: %q maps to %q and %q",
					b.Clean.Attrs[p[0]], b.Clean.Attrs[p[1]], det, prev, dep)
				break
			}
			seen[det] = dep
		}
	}
}

func TestTaxFDsHold(t *testing.T) {
	b := Tax(2000, 2)
	for _, p := range b.FDPairs {
		seen := map[string]string{}
		for i := 0; i < b.Clean.NumRows(); i++ {
			det := b.Clean.Value(i, p[0])
			dep := b.Clean.Value(i, p[1])
			if prev, ok := seen[det]; ok && prev != dep {
				t.Errorf("FD %s->%s violated in clean Tax data", b.Clean.Attrs[p[0]], b.Clean.Attrs[p[1]])
				break
			}
			seen[det] = dep
		}
	}
}

func TestKnowledgeBaseCoverage(t *testing.T) {
	h := Hospital(300, 1)
	if !h.KB.HasType("City") || !h.KB.HasType("State") || !h.KB.HasType("Condition") {
		t.Error("Hospital KB should cover City, State, Condition")
	}
	cov := h.KB.CoverageFor("City", h.Clean.Column(3))
	if cov < 0.99 {
		t.Errorf("Hospital City KB coverage = %v, want ~1", cov)
	}
	// Per the paper, KATARA has no relevant KB for Flights/Beers/Rayyan.
	for _, gen := range []Generator{Flights, Beers, Rayyan, Movies} {
		b := gen(100, 1)
		if b.KB.Types() != 0 {
			t.Errorf("%s KB should be empty, has %d types", b.Name, b.KB.Types())
		}
	}
}

func TestRegistryAndByName(t *testing.T) {
	if len(Registry()) != 7 {
		t.Errorf("registry has %d datasets, want 7", len(Registry()))
	}
	if ByName("Hospital") == nil {
		t.Error("ByName(Hospital) = nil")
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
	if len(Names()) != 7 {
		t.Error("Names() length mismatch")
	}
}

func TestComparisonSetExcludesTax(t *testing.T) {
	set := ComparisonSet(1)
	if len(set) != 6 {
		t.Fatalf("comparison set has %d datasets, want 6", len(set))
	}
	for _, b := range set {
		if b.Name == "Tax" {
			t.Error("Tax must not be in the comparison set")
		}
	}
}

func TestErrorTypeMixturePerDataset(t *testing.T) {
	// Each dataset's injection log must contain its Table II error types.
	expect := map[string][]errgen.Type{
		"Hospital":    {errgen.Typo, errgen.PatternViolation, errgen.Outlier, errgen.RuleViolation},
		"Flights":     {errgen.Missing, errgen.Typo, errgen.PatternViolation, errgen.RuleViolation},
		"Beers":       {errgen.Missing, errgen.PatternViolation, errgen.Typo, errgen.Outlier, errgen.RuleViolation},
		"Rayyan":      {errgen.Missing, errgen.PatternViolation, errgen.Typo, errgen.Outlier, errgen.RuleViolation},
		"Billionaire": {errgen.Missing, errgen.PatternViolation, errgen.Typo, errgen.Outlier},
		"Movies":      {errgen.Missing, errgen.PatternViolation, errgen.Outlier},
	}
	for _, tc := range tableII {
		b := tc.gen(0, 1)
		have := map[errgen.Type]bool{}
		for _, inj := range b.Log {
			have[inj.Type] = true
		}
		for _, want := range expect[tc.name] {
			if !have[want] {
				t.Errorf("%s: missing injected error type %s", tc.name, want)
			}
		}
	}
	// Movies must have no rule violations (Table II: RV 0).
	m := Movies(0, 1)
	for _, inj := range m.Log {
		if inj.Type == errgen.RuleViolation {
			t.Error("Movies must not contain rule violations")
			break
		}
	}
}
