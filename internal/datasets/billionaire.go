package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/errgen"
	"repro/internal/knowledge"
	"repro/internal/table"
)

// Billionaire generates the Billionaire benchmark: 2,615 tuples over 22
// attributes with ~9.8% injected cell errors of all five types (Table II;
// the paper injects errors into this dataset with the BigDaMa error
// generator, which internal/errgen reproduces). Country determines Region
// and Citizenship correlates with Country.
func Billionaire(n int, seed int64) *Bench {
	if n <= 0 {
		n = 2615
	}
	rng := rand.New(rand.NewSource(seed))
	attrs := []string{
		"Name", "Rank", "Year", "CompanyName", "CompanyFounded",
		"CompanyRelationship", "CompanySector", "CompanyType", "Age",
		"Gender", "Citizenship", "Country", "Region", "GDP", "WealthType",
		"WorthBillions", "HowCategory", "HowIndustry", "WasFounder",
		"Inherited", "Education", "MaritalStatus",
	}
	clean := table.NewWithCapacity("Billionaire", attrs, n)

	countryRegion := map[string]string{
		"United States": "North America", "Canada": "North America",
		"Mexico": "North America", "Brazil": "South America",
		"Germany": "Europe", "France": "Europe", "United Kingdom": "Europe",
		"Italy": "Europe", "Russia": "Europe",
		"China": "East Asia", "Japan": "East Asia", "India": "South Asia",
	}
	countryGDP := map[string]string{}
	for i, c := range countries {
		countryGDP[c] = fmt.Sprintf("%d", 1000+i*850)
	}
	relationships := []string{"founder", "relation", "chairman", "investor"}
	companyTypes := []string{"new", "aquired", "privatization"}

	for i := 0; i < n; i++ {
		country := pick(rng, countries)
		first := pick(rng, firstNames)
		last := pick(rng, lastNames)
		founded := 1900 + rng.Intn(110)
		clean.MustAppendRow([]string{
			first + " " + last,
			fmt.Sprintf("%d", 1+rng.Intn(1500)),
			fmt.Sprintf("%d", []int{1996, 2001, 2014}[rng.Intn(3)]),
			last + " " + []string{"Group", "Holdings", "Industries", "Capital", "Corp"}[rng.Intn(5)],
			fmt.Sprintf("%d", founded),
			pick(rng, relationships),
			pick(rng, industries),
			pick(rng, companyTypes),
			fmt.Sprintf("%d", 30+rng.Intn(60)),
			[]string{"male", "female"}[rng.Intn(2)],
			country,
			country,
			countryRegion[country],
			countryGDP[country],
			pick(rng, wealthSources),
			fmt.Sprintf("%.1f", 1.0+rng.Float64()*70),
			pick(rng, wealthSources),
			pick(rng, industries),
			[]string{"true", "false"}[rng.Intn(2)],
			[]string{"not inherited", "father", "3rd generation"}[rng.Intn(3)],
			pick(rng, educations),
			pick(rng, maritalStatuses),
		})
	}

	fdPairs := [][2]int{
		{11, 12}, // Country -> Region
		{11, 13}, // Country -> GDP
	}
	dirty, log := errgen.Inject(clean, errgen.Spec{
		Rates: map[errgen.Type]float64{
			errgen.Missing:          0.024,
			errgen.PatternViolation: 0.025,
			errgen.Typo:             0.013,
			errgen.Outlier:          0.030,
			errgen.RuleViolation:    0.006,
		},
		NumericCols: []int{1, 4, 8, 15}, // Rank, CompanyFounded, Age, WorthBillions
		FDPairs:     fdPairs,
		Seed:        seed + 1,
	})

	kb := knowledge.NewBase()
	kb.AddEntities("Country", countries...)
	kb.AddEntities("Citizenship", countries...)
	return &Bench{Name: "Billionaire", Clean: clean, Dirty: dirty, Log: log, KB: kb, FDPairs: fdPairs}
}
