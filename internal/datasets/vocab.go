package datasets

// Shared vocabularies for the synthetic generators. They stand in for the
// real-world entity universes of the benchmark datasets; the knowledge
// package exposes slices of them as KATARA knowledge bases / LLM world
// knowledge.

var firstNames = []string{
	"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
	"Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
	"Joseph", "Jessica", "Thomas", "Sarah", "Carol", "Karen", "Daniel",
	"Nancy", "Matthew", "Lisa", "Anthony", "Betty", "Mark", "Margaret",
	"Donald", "Sandra", "Steven", "Ashley", "Paul", "Kimberly", "Andrew",
	"Emily", "Joshua", "Donna", "Kenneth", "Michelle",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
	"Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
	"Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
	"Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores",
}

// cityState pairs each city with its state code (an FD the Hospital and
// Tax generators rely on).
var cityState = map[string]string{
	"Birmingham": "AL", "Montgomery": "AL", "Mobile": "AL", "Huntsville": "AL",
	"Phoenix": "AZ", "Tucson": "AZ", "Mesa": "AZ",
	"Los Angeles": "CA", "San Diego": "CA", "San Jose": "CA", "Sacramento": "CA",
	"Denver": "CO", "Aurora": "CO",
	"Miami": "FL", "Tampa": "FL", "Orlando": "FL",
	"Atlanta": "GA", "Savannah": "GA",
	"Chicago": "IL", "Springfield": "IL",
	"Boston": "MA", "Worcester": "MA",
	"Detroit": "MI", "Lansing": "MI",
	"New York": "NY", "Buffalo": "NY", "Rochester": "NY",
	"Houston": "TX", "Dallas": "TX", "Austin": "TX", "El Paso": "TX",
	"Seattle": "WA", "Spokane": "WA",
}

// zipCity maps synthetic 5-digit zips to cities (Zip -> City FD).
var zipCity = func() map[string]string {
	m := map[string]string{}
	zip := 10001
	for _, c := range sortedKeysStr(cityState) {
		m[itoa5(zip)] = c
		zip += 137
		m[itoa5(zip)] = c
		zip += 211
	}
	return m
}()

func itoa5(n int) string {
	s := ""
	for i := 0; i < 5; i++ {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

func sortedKeysStr(m map[string]string) []string { return sortedKeys(m) }

// hospitalMeasures maps measure codes to (measure name, condition), the
// paper's Fig. 4 Hospital consistency example.
var hospitalMeasures = map[string][2]string{
	"SCIP-INF-1": {"prophylactic antibiotic received within one hour prior to surgical incision", "surgical infection prevention"},
	"SCIP-INF-2": {"prophylactic antibiotic selection for surgical patients", "surgical infection prevention"},
	"SCIP-INF-3": {"prophylactic antibiotics discontinued within 24 hours after surgery", "surgical infection prevention"},
	"AMI-1":      {"aspirin at arrival", "heart attack"},
	"AMI-2":      {"aspirin prescribed at discharge", "heart attack"},
	"AMI-3":      {"ace inhibitor or arb for lvsd", "heart attack"},
	"AMI-4":      {"adult smoking cessation advice", "heart attack"},
	"PN-1":       {"oxygenation assessment", "pneumonia"},
	"PN-2":       {"pneumococcal vaccination", "pneumonia"},
	"PN-3":       {"blood cultures performed", "pneumonia"},
	"HF-1":       {"discharge instructions", "heart failure"},
	"HF-2":       {"evaluation of lvs function", "heart failure"},
}

var hospitalTypes = []string{"Acute Care Hospitals", "Critical Access Hospitals", "Childrens"}
var hospitalOwners = []string{
	"Government - Hospital District or Authority", "Voluntary non-profit - Private",
	"Proprietary", "Government - State", "Voluntary non-profit - Church",
}

// airlines and airports feed the Flights generator.
var airlines = []string{"AA", "UA", "DL", "WN", "B6", "AS", "NK"}
var airports = []string{"JFK", "LAX", "ORD", "DFW", "DEN", "SFO", "SEA", "ATL", "BOS", "MIA"}

// beerStyles and breweries feed the Beers generator; brewery id determines
// name/city/state.
var beerStyles = []string{
	"American IPA", "American Pale Ale", "American Porter", "American Stout",
	"Hefeweizen", "Saison", "Pilsner", "Amber Ale", "Brown Ale", "Witbier",
	"Double IPA", "Kolsch", "Oatmeal Stout", "Fruit Beer", "Cream Ale",
}
var beerAdjectives = []string{
	"Hoppy", "Golden", "Dark", "Wild", "Lazy", "Rugged", "Smooth", "Bold",
	"Crisp", "Hazy", "Roasty", "Juicy", "Funky", "Mellow", "Bright",
}
var beerNouns = []string{
	"Trail", "River", "Canyon", "Summit", "Harvest", "Anchor", "Bison",
	"Raven", "Prairie", "Lantern", "Compass", "Orchard", "Thunder", "Meadow",
}
var breweryNouns = []string{
	"Valley", "Mountain", "Harbor", "Union", "Granite", "Cedar", "Copper",
	"Iron", "Maple", "Stone", "Ridge", "Falls",
}

// journals feed the Rayyan generator.
var journals = map[string]string{
	"Journal of Clinical Epidemiology":      "J Clin Epidemiol",
	"The Lancet":                            "Lancet",
	"British Medical Journal":               "BMJ",
	"Annals of Internal Medicine":           "Ann Intern Med",
	"Journal of the American Medical Assoc": "JAMA",
	"New England Journal of Medicine":       "N Engl J Med",
	"Cochrane Database of Systematic Rev":   "Cochrane Database Syst Rev",
	"PLOS Medicine":                         "PLoS Med",
}
var languages = []string{"eng", "eng", "eng", "eng", "fre", "ger", "spa", "chi"}
var paperTopics = []string{
	"randomized trial of", "systematic review of", "meta-analysis of",
	"cohort study of", "case-control study of", "diagnostic accuracy of",
}
var paperSubjects = []string{
	"statin therapy", "influenza vaccination", "cognitive behavioural therapy",
	"antibiotic prophylaxis", "screening colonoscopy", "smoking cessation",
	"blood pressure control", "insulin titration", "stroke rehabilitation",
}

// industries and countries feed the Billionaire generator.
var industries = []string{
	"Technology", "Retail", "Finance", "Energy", "Real Estate", "Media",
	"Healthcare", "Manufacturing", "Telecom", "Consumer Goods",
}
var countries = []string{
	"United States", "China", "Germany", "India", "France", "Brazil",
	"United Kingdom", "Japan", "Canada", "Italy", "Mexico", "Russia",
}
var wealthSources = []string{"self made", "inherited", "inherited and growing"}

// movieGenres and directors feed the Movies generator.
var movieGenres = []string{
	"Drama", "Comedy", "Action", "Thriller", "Romance", "Horror",
	"Documentary", "Animation", "Crime", "Sci-Fi",
}
var movieWords1 = []string{
	"Silent", "Broken", "Midnight", "Golden", "Lost", "Hidden", "Crimson",
	"Winter", "Electric", "Burning", "Paper", "Distant", "Savage", "Gentle",
}
var movieWords2 = []string{
	"Horizon", "Promise", "Garden", "Empire", "Letters", "Shadows", "Voyage",
	"Harvest", "Echoes", "Station", "Crossing", "Return", "Anthem", "Mirror",
}
var movieLanguages = []string{"English", "English", "English", "French", "Spanish", "Mandarin", "Hindi"}
var certificates = []string{"PG", "PG-13", "R", "G", "NR"}

// tax rates per state (State -> Rate FD used by the Tax generator).
var stateTaxRate = map[string]string{
	"AL": "5.00", "AZ": "4.50", "CA": "9.30", "CO": "4.63", "FL": "0.00",
	"GA": "5.75", "IL": "4.95", "MA": "5.00", "MI": "4.25", "NY": "6.85",
	"TX": "0.00", "WA": "0.00",
}

var maritalStatuses = []string{"S", "M", "M", "S", "W", "D"}
var educations = []string{"High School", "Bachelor", "Master", "Phd", "Associate"}
