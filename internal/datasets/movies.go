package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/errgen"
	"repro/internal/knowledge"
	"repro/internal/table"
)

// Movies generates the Movies benchmark (Magellan repository): 7,390
// tuples over 17 attributes with ~5% cell errors and no rule violations
// (Table II reports RV 0 for Movies).
func Movies(n int, seed int64) *Bench {
	if n <= 0 {
		n = 7390
	}
	rng := rand.New(rand.NewSource(seed))
	attrs := []string{
		"MovieID", "Title", "Year", "ReleaseDate", "Director", "Creator",
		"Actor1", "Actor2", "Genre", "Duration", "Language", "Country",
		"RatingValue", "RatingCount", "Certificate", "Studio", "Gross",
	}
	clean := table.NewWithCapacity("Movies", attrs, n)

	studios := []string{"Universal", "Paramount", "Warner Bros", "Columbia", "Lionsgate", "A24", "Focus"}
	for i := 0; i < n; i++ {
		year := 1970 + rng.Intn(50)
		clean.MustAppendRow([]string{
			fmt.Sprintf("tt%07d", 100000+i),
			fmt.Sprintf("The %s %s", pick(rng, movieWords1), pick(rng, movieWords2)),
			fmt.Sprintf("%d", year),
			fmt.Sprintf("%d-%02d-%02d", year, 1+rng.Intn(12), 1+rng.Intn(28)),
			pick(rng, firstNames) + " " + pick(rng, lastNames),
			pick(rng, firstNames) + " " + pick(rng, lastNames),
			pick(rng, firstNames) + " " + pick(rng, lastNames),
			pick(rng, firstNames) + " " + pick(rng, lastNames),
			pick(rng, movieGenres),
			fmt.Sprintf("%d min", 75+rng.Intn(90)),
			pick(rng, movieLanguages),
			pick(rng, countries),
			fmt.Sprintf("%.1f", 3.0+rng.Float64()*6.5),
			fmt.Sprintf("%d", 500+rng.Intn(900000)),
			pick(rng, certificates),
			pick(rng, studios),
			fmt.Sprintf("$%dM", 1+rng.Intn(400)),
		})
	}

	dirty, log := errgen.Inject(clean, errgen.Spec{
		Rates: map[errgen.Type]float64{
			errgen.Missing:          0.022,
			errgen.PatternViolation: 0.013,
			errgen.Typo:             0.002,
			errgen.Outlier:          0.013,
			// Movies has no rule violations in Table II.
		},
		NumericCols: []int{2, 12, 13}, // Year, RatingValue, RatingCount
		FDPairs:     [][2]int{},
		Seed:        seed + 1,
	})

	// No relevant KB for Movies (KATARA scores zero in the paper).
	return &Bench{Name: "Movies", Clean: clean, Dirty: dirty, Log: log,
		KB: knowledge.NewBase(), FDPairs: nil}
}
