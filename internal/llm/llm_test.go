package llm

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/knowledge"
	"repro/internal/table"
	"repro/internal/text"
)

func hospital() *table.Dataset {
	d := table.New("hospital", []string{"Condition", "MeasureCode", "Score"})
	for i := 0; i < 40; i++ {
		d.MustAppendRow([]string{"surgical infection prevention", "SCIP-1", "85"})
		d.MustAppendRow([]string{"heart attack", "AMI-2", "90"})
		d.MustAppendRow([]string{"pneumonia", "PN-3", "78"})
	}
	return d
}

func allRows(d *table.Dataset) []int {
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func TestTokens(t *testing.T) {
	if Tokens("") != 0 {
		t.Error("empty string has 0 tokens")
	}
	if got := Tokens("abcd"); got != 2 {
		t.Errorf("Tokens(4 chars) = %d, want 2", got)
	}
	if got := Tokens(strings.Repeat("x", 400)); got != 101 {
		t.Errorf("Tokens(400 chars) = %d, want 101", got)
	}
}

func TestUsageAccumulates(t *testing.T) {
	c := NewClient(Qwen72B)
	d := hospital()
	c.DistributionAnalysis(d, 0, []int{0, 1, 2})
	u := c.Usage()
	if u.Calls != 1 || u.InputTokens == 0 || u.OutputTokens == 0 {
		t.Errorf("usage = %+v, want nonzero tokens and 1 call", u)
	}
	c.ResetUsage()
	if c.Usage().Total() != 0 {
		t.Error("ResetUsage must zero counters")
	}
	var agg Usage
	agg.Add(Usage{InputTokens: 3, OutputTokens: 4, Calls: 1})
	agg.Add(Usage{InputTokens: 1, OutputTokens: 1, Calls: 1})
	if agg.Total() != 9 || agg.Calls != 2 {
		t.Errorf("Add/Total wrong: %+v", agg)
	}
}

func TestShapeOf(t *testing.T) {
	cases := map[string]string{
		"12:30 pm":    "DSDWL",
		"Bob Johnson": "LWL",
		"80000":       "D",
		"":            "",
	}
	for in, want := range cases {
		if got := ShapeOf(in); got != want {
			t.Errorf("ShapeOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGuidelineFDDetection(t *testing.T) {
	c := NewClient(Qwen72B)
	d := hospital()
	prof := c.DistributionAnalysis(d, 0, allRows(d)[:6])
	g := c.GenerateGuideline(d, 0, []int{1}, prof, allRows(d)[:6])
	if len(g.FDs) == 0 {
		t.Fatal("MeasureCode determines Condition; guideline should carry an FD rule")
	}
	if g.Text == "" {
		t.Error("guideline must render text for token accounting")
	}
}

func TestLabelBatchFindsInjectedErrors(t *testing.T) {
	c := NewClient(Qwen72B)
	d := hospital()
	// Inject one error type per group of rows: FD violations, missing
	// values, typos, and numeric outliers. Errors are diverse (as in real
	// dirty data) and sparse enough (~10% per group) that the dirty-data
	// guideline stays sound. Labeling noise is seeded per cell, so
	// assertions are statistical.
	typos := []string{"pneumonla", "pneumonja", "pnsumonia", "pneumonia!"}
	var fdRows, mvRows, typoRows, outRows, cleanRows []int
	for i := 0; i < 4; i++ {
		d.SetValue(3*i, 0, "pneumonia") // contradicts SCIP-1
		fdRows = append(fdRows, 3*i)
		d.SetValue(3*i+1, 0, "") // AMI rows -> missing
		mvRows = append(mvRows, 3*i+1)
		d.SetValue(3*i+2, 0, typos[i]) // distinct typos of pneumonia
		typoRows = append(typoRows, 3*i+2)
	}
	for i := 30; i < 34; i++ {
		d.SetValue(3*i, 2, "9999999")
		outRows = append(outRows, 3*i)
		cleanRows = append(cleanRows, 3*i+1, 3*i+2, 3*i-1, 3*i-2)
	}
	detected := func(j int, rows []int, corr []int) int {
		prof := c.DistributionAnalysis(d, j, allRows(d)[:8])
		g := c.GenerateGuideline(d, j, corr, prof, allRows(d)[:8])
		labels := c.LabelBatch(d, j, rows, g)
		n := 0
		for _, l := range labels {
			if l {
				n++
			}
		}
		return n
	}
	if got := detected(0, fdRows, []int{1}); got < 3 {
		t.Errorf("FD violations detected %d/4, want >= 3", got)
	}
	if got := detected(0, mvRows, []int{1}); got < 3 {
		t.Errorf("missing values detected %d/4, want >= 3", got)
	}
	if got := detected(0, typoRows, []int{1}); got < 3 {
		t.Errorf("typos detected %d/4, want >= 3", got)
	}
	if got := detected(2, outRows, []int{0}); got < 3 {
		t.Errorf("outliers detected %d/4, want >= 3", got)
	}
	if got := detected(0, cleanRows, []int{1}); got > 2 {
		t.Errorf("clean cells mislabeled %d/16, want <= 2", got)
	}
}

func TestLabelBatchWithoutGuideline(t *testing.T) {
	c := NewClient(Qwen72B)
	d := hospital()
	d.SetValue(0, 0, "")
	labels := c.LabelBatch(d, 0, []int{0, 1, 2}, nil)
	if !labels[0] {
		t.Error("missing value must be caught even without guideline")
	}
}

func TestGenerateCriteriaSkillDropsChecks(t *testing.T) {
	d := hospital()
	full := NewClient(Qwen72B).GenerateCriteria(d, 0, allRows(d), []int{1})
	weakProfile := Qwen7B
	weakProfile.CriteriaSkill = 0.3
	weak := NewClient(weakProfile).GenerateCriteria(d, 0, allRows(d), []int{1})
	if len(weak.Criteria) >= len(full.Criteria) {
		t.Errorf("weak model kept %d criteria, full model %d; weak should drop some",
			len(weak.Criteria), len(full.Criteria))
	}
}

func TestAugmentErrors(t *testing.T) {
	c := NewClient(Qwen72B)
	clean := []string{"Bachelor", "Master", "Phd"}
	out := c.AugmentErrors("Education", clean, []string{"Bechxlor"}, 10)
	if len(out) != 10 {
		t.Fatalf("augmented %d, want 10", len(out))
	}
	for _, v := range out {
		for _, cl := range clean {
			if v == cl {
				t.Errorf("augmented value %q equals a clean source", v)
			}
		}
	}
}

func TestAugmentErrorsEmptyInput(t *testing.T) {
	c := NewClient(Qwen72B)
	if out := c.AugmentErrors("x", nil, nil, 5); out != nil {
		t.Error("no clean values -> no augmentation")
	}
	if out := c.AugmentErrors("x", []string{"a"}, nil, 0); out != nil {
		t.Error("n=0 -> no augmentation")
	}
}

func TestDetectTupleErrorsFMED(t *testing.T) {
	kb := knowledge.NewBase()
	kb.AddEntities("City", "Chicago", "Boston", "Denver")
	c := NewClient(Qwen72B)
	attrs := []string{"City", "Zip"}
	verdict := c.DetectTupleErrors(attrs, []string{"Chicagq", "60601"}, kb)
	if !verdict[0] {
		t.Error("unknown entity (typo) should be flagged via world knowledge")
	}
	if verdict[1] {
		t.Error("attribute without KB coverage should pass")
	}
	verdict = c.DetectTupleErrors(attrs, []string{"", "60601"}, kb)
	if !verdict[0] {
		t.Error("null must be flagged")
	}
}

func TestDeterministicAcrossClients(t *testing.T) {
	d := hospital()
	d.SetValue(0, 0, "")
	run := func() []bool {
		c := NewClient(Qwen72B)
		prof := c.DistributionAnalysis(d, 0, allRows(d)[:6])
		g := c.GenerateGuideline(d, 0, []int{1}, prof, allRows(d)[:6])
		return c.LabelBatch(d, 0, allRows(d)[:30], g)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("labeling must be deterministic for a fixed profile")
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, ok := ProfileByName("Qwen2.5-72b")
	if !ok || p.Name != "Qwen2.5-72b" {
		t.Error("built-in profile lookup failed")
	}
	if _, ok := ProfileByName("nonexistent"); ok {
		t.Error("unknown profile must not resolve")
	}
	if len(Profiles()) != 5 {
		t.Errorf("Profiles() = %d entries, want 5", len(Profiles()))
	}
}

// Property: Typo always changes the string or returns a non-empty result,
// and MutateValue never panics on arbitrary input.
func TestMutationProperties(t *testing.T) {
	c := NewClient(Qwen72B)
	f := func(s string, seed int64) bool {
		if len(s) > 24 {
			s = s[:24]
		}
		rng := c.rng(s)
		v := Typo(rng, s)
		if s == "" {
			return v != ""
		}
		_ = MutateValue(rng, s)
		_ = MangleFormat(rng, s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: typo results differ from the source in edit distance >= 1 and
// <= 2 for non-empty ASCII sources.
func TestTypoEditDistance(t *testing.T) {
	c := NewClient(Qwen72B)
	rng := c.rng("typodist")
	for i := 0; i < 200; i++ {
		src := "Bachelor"
		v := Typo(rng, src)
		d := text.Levenshtein(src, v)
		if d < 1 || d > 2 {
			t.Fatalf("Typo(%q) = %q has edit distance %d, want 1..2", src, v, d)
		}
	}
}

func TestGPT4oMiniNoisierThanQwen72(t *testing.T) {
	d := hospital()
	labelAll := func(p Profile) int {
		c := NewClient(p)
		prof := c.DistributionAnalysis(d, 0, allRows(d)[:6])
		g := c.GenerateGuideline(d, 0, []int{1}, prof, allRows(d)[:6])
		labels := c.LabelBatch(d, 0, allRows(d), g)
		n := 0
		for _, l := range labels {
			if l {
				n++
			}
		}
		return n
	}
	// On a perfectly clean dataset every "error" is a false positive.
	if labelAll(GPT4oMini) <= labelAll(Qwen72B) {
		t.Error("GPT-4o-mini profile should produce more false positives than Qwen2.5-72b")
	}
}

func TestTranscriptRecording(t *testing.T) {
	var buf bytes.Buffer
	c := NewClient(Qwen72B)
	c.SetTranscript(&buf)
	d := hospital()
	c.DistributionAnalysis(d, 0, []int{0, 1})
	c.LabelBatch(d, 0, []int{0, 1}, nil)
	log := buf.String()
	if !strings.Contains(log, "=== call") || !strings.Contains(log, "prompt") {
		t.Errorf("transcript missing structure: %q", log[:min(120, len(log))])
	}
	if strings.Count(log, "=== call") != 2 {
		t.Errorf("transcript should have 2 calls, got %d", strings.Count(log, "=== call"))
	}
}

func TestPromptPrefixCache(t *testing.T) {
	d := hospital()
	c := NewClient(Qwen72B)
	prof := c.DistributionAnalysis(d, 0, []int{0, 1, 2})
	g := c.GenerateGuideline(d, 0, []int{1}, prof, []int{0, 1, 2})
	base := c.Usage().InputTokens
	c.LabelBatch(d, 0, []int{0, 1}, g)
	first := c.Usage().InputTokens - base
	c.LabelBatch(d, 0, []int{2, 3}, g)
	second := c.Usage().InputTokens - base - first
	if second >= first {
		t.Errorf("second batch should reuse the cached guideline prefix: first=%d second=%d", first, second)
	}
}
