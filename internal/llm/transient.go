package llm

import (
	"context"
	"fmt"
	"hash/fnv"

	"repro/internal/faultpoint"
	"repro/internal/retry"
	"repro/internal/table"
)

// fpJudgeTransient simulates a flaky LLM backend: armed with error(N) the
// first N labeling calls fail before any tokens are charged, exactly like a
// 429/503 that never reached the model.
var fpJudgeTransient = faultpoint.New("llm.judge.transient")

// LabelBatchTransient is LabelBatchDedup behind a jittered-exponential
// retry loop for transient backend failures.
//
// Bit-identity contract: a call that succeeds after retries returns the
// exact verdicts (and charges the exact tokens) of a call that succeeded
// first try. That holds because (1) a failed attempt aborts before
// labelBatch runs, so it charges nothing and draws nothing; (2) the per-cell
// labeling-noise RNG is keyed, not sequential — each cell reseeds from
// (profile seed, dataset, attribute, row), so the draw cannot depend on how
// many attempts preceded it; and (3) the retrier's jitter uses its own
// seeded stream (see package retry). The seed is derived per batch so
// backoff timing is itself reproducible.
func (c *Client) LabelBatchTransient(ctx context.Context, d *table.Dataset, j int, rows []int, g *Guideline, memo *JudgeMemo) ([]bool, error) {
	var out []bool
	first := -1
	if len(rows) > 0 {
		first = rows[0]
	}
	p := retry.Policy{Seed: jitterSeed(c.profile.Seed, d.Name, j, first)}
	err := retry.Do(ctx, p, func() error {
		if err := fpJudgeTransient.Eval(); err != nil {
			return err
		}
		out = c.labelBatch(d, j, rows, g, memo)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("llm: labeling %s batch at row %d: %w", d.Attrs[j], first, err)
	}
	return out, nil
}

// jitterSeed keys the retry jitter stream off the batch identity so backoff
// timing is reproducible run to run, while staying disjoint from every
// c.rng stream (those hash human-readable keys; this hashes a batch tuple
// with a distinct prefix).
func jitterSeed(seed int64, dataset string, j, firstRow int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "retry/%s/%d/%d", dataset, j, firstRow)
	s := seed ^ int64(h.Sum64())
	if s == 0 {
		s = 1
	}
	return s
}
