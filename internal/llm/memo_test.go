package llm

import "testing"

// TestLabelBatchDedupMatchesLabelBatch pins the labeling memo's exactness
// contract: LabelBatchDedup produces identical verdicts and identical token
// charges to LabelBatch, batch by batch, on a dataset with heavy value
// duplication and injected errors.
func TestLabelBatchDedupMatchesLabelBatch(t *testing.T) {
	build := func() (*Client, []*Guideline) { return NewClient(Qwen72B), nil }

	dPlain := hospital()
	dMemo := hospital()
	dPlain.SetValue(0, 0, "")
	dMemo.SetValue(0, 0, "")
	dPlain.SetValue(4, 0, "pneumonla")
	dMemo.SetValue(4, 0, "pneumonla")

	cPlain, _ := build()
	cMemo, _ := build()
	rows := allRows(dPlain)
	for j := 0; j < dPlain.NumCols(); j++ {
		profP := cPlain.DistributionAnalysis(dPlain, j, rows[:8])
		gP := cPlain.GenerateGuideline(dPlain, j, []int{(j + 1) % dPlain.NumCols()}, profP, rows[:8])
		profM := cMemo.DistributionAnalysis(dMemo, j, rows[:8])
		gM := cMemo.GenerateGuideline(dMemo, j, []int{(j + 1) % dMemo.NumCols()}, profM, rows[:8])

		memo := NewJudgeMemo(dMemo, j, gM)
		for s := 0; s < len(rows); s += 20 {
			end := min(s+20, len(rows))
			want := cPlain.LabelBatch(dPlain, j, rows[s:end], gP)
			got := cMemo.LabelBatchDedup(dMemo, j, rows[s:end], gM, memo)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("col %d row %d: memo verdict %v != plain %v", j, rows[s:end][i], got[i], want[i])
				}
			}
		}
		// The memo must be deduplicating on this replicated dataset.
		if len(memo.cache) >= dMemo.NumRows() {
			t.Errorf("col %d: memo holds %d entries for %d rows — no dedup", j, len(memo.cache), dMemo.NumRows())
		}
	}
	if cPlain.Usage() != cMemo.Usage() {
		t.Fatalf("token usage differs: plain %+v vs memo %+v", cPlain.Usage(), cMemo.Usage())
	}
}

// TestNewJudgeMemoNilGuideline pins the inadmissibility rule: batch-only
// labeling (nil guideline) never gets a memo, and LabelBatchDedup with a
// nil memo equals LabelBatch.
func TestNewJudgeMemoNilGuideline(t *testing.T) {
	d := hospital()
	if NewJudgeMemo(d, 0, nil) != nil {
		t.Fatal("nil guideline must yield a nil memo")
	}
	c1 := NewClient(Qwen72B)
	c2 := NewClient(Qwen72B)
	rows := []int{0, 1, 2, 3, 4}
	a := c1.LabelBatch(d, 0, rows, nil)
	b := c2.LabelBatchDedup(d, 0, rows, nil, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: verdict differs", rows[i])
		}
	}
}
