// Package llm provides the large-language-model substrate of the ZeroED
// reproduction. The paper drives four reasoning tasks through zero-shot
// prompting (criteria reasoning, distribution-analysis function generation,
// guideline generation, and holistic labeling) plus contrastive criteria
// refinement and semantic error augmentation. Offline, this package
// implements a *simulated* LLM: a deterministic reasoning engine behind the
// same prompt interface.
//
// Faithfulness contract (documented in DESIGN.md):
//
//   - Information flow matches the paper. Every method first renders the
//     exact prompt text (task description + serialized data + auxiliary
//     content) and charges input tokens for it; results are derived ONLY
//     from what the prompt contains, then rendered to text and charged as
//     output tokens. Nothing peeks at ground truth.
//   - Model quality is an explicit knob. Profiles (Qwen2.5-72b, Llama3.1
//     family, Qwen2.5-7b, GPT-4o-mini) differ in reasoning skill and
//     seeded label noise, reproducing the capability ordering of Table V.
//   - Token accounting (~4 chars/token, the usual heuristic) makes the
//     token-cost experiments (Fig. 8) regenerable.
package llm

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sync"
)

// Tokens estimates the token count of a prompt or completion string using
// the standard ~4 characters/token heuristic.
func Tokens(s string) int64 {
	if len(s) == 0 {
		return 0
	}
	return int64(len(s)/4 + 1)
}

// Usage accumulates token and call counts across LLM invocations.
type Usage struct {
	InputTokens  int64
	OutputTokens int64
	Calls        int64
}

// Add merges another usage record into u.
func (u *Usage) Add(v Usage) {
	u.InputTokens += v.InputTokens
	u.OutputTokens += v.OutputTokens
	u.Calls += v.Calls
}

// Total returns input+output tokens.
func (u Usage) Total() int64 { return u.InputTokens + u.OutputTokens }

// Client is the simulated LLM endpoint. It is safe for concurrent use.
type Client struct {
	profile Profile

	mu         sync.Mutex
	usage      Usage
	cached     map[uint64]bool // prompt-prefix cache (see chargeCached)
	transcript io.Writer       // optional prompt/completion log
}

// SetTranscript directs a human-readable log of every prompt/completion
// pair to w (nil disables). Useful for debugging what the simulated model
// "saw" — the offline analogue of an LLM gateway's request log.
func (c *Client) SetTranscript(w io.Writer) {
	c.mu.Lock()
	c.transcript = w
	c.mu.Unlock()
}

func (c *Client) record(prompt, completion string) {
	if c.transcript == nil {
		return
	}
	fmt.Fprintf(c.transcript, "=== call %d (model %s) ===\n--- prompt (%d tokens) ---\n%s\n--- completion (%d tokens) ---\n%s\n\n",
		c.usage.Calls, c.profile.Name, Tokens(prompt), truncate(prompt, 2000), Tokens(completion), truncate(completion, 2000))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "...[truncated]"
}

// NewClient creates a client backed by the given model profile.
func NewClient(p Profile) *Client {
	return &Client{profile: p}
}

// Profile returns the model profile the client simulates.
func (c *Client) Profile() Profile { return c.profile }

// Usage returns a snapshot of accumulated token usage.
func (c *Client) Usage() Usage {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.usage
}

// ResetUsage zeroes the accumulated usage counters.
func (c *Client) ResetUsage() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.usage = Usage{}
}

// charge records one call with the given prompt and completion text.
func (c *Client) charge(prompt, completion string) {
	c.mu.Lock()
	c.usage.InputTokens += Tokens(prompt)
	c.usage.OutputTokens += Tokens(completion)
	c.usage.Calls++
	c.record(prompt, completion)
	c.mu.Unlock()
}

// chargeCached records one call whose prompt has a shared prefix (e.g. a
// per-attribute guideline reused across labeling batches). Serving stacks
// cache such prefixes (vLLM prefix caching, provider prompt caching), so
// the prefix's tokens are charged only on first sight; the per-call suffix
// is always charged.
func (c *Client) chargeCached(prefix, suffix, completion string) {
	h := fnv.New64a()
	h.Write([]byte(prefix))
	key := h.Sum64()
	c.mu.Lock()
	if c.cached == nil {
		c.cached = make(map[uint64]bool)
	}
	if !c.cached[key] {
		c.cached[key] = true
		c.usage.InputTokens += Tokens(prefix)
	}
	c.usage.InputTokens += Tokens(suffix)
	c.usage.OutputTokens += Tokens(completion)
	c.usage.Calls++
	c.record(prefix+suffix, completion)
	c.mu.Unlock()
}

// rng derives a deterministic random source from the model seed and a
// context key, so that repeated runs and concurrent attribute processing
// stay reproducible.
func (c *Client) rng(key string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(key))
	return rand.New(rand.NewSource(c.profile.Seed ^ int64(h.Sum64())))
}
