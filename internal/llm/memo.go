package llm

import "repro/internal/table"

// JudgeMemo memoizes guideline-driven label judgements per value-ID tuple —
// the fit-phase dedup cache for LLM labeling. Admissibility:
// judgeWithGuideline(g, d, row, v) reads only the cell's own value and, for
// each of the guideline's FD rules, the determinant column's value of the
// same row; within one dataset binding the value-ID→string mapping is
// injective, so the judgement is a pure function of the (own ID,
// determinant IDs...) tuple. The per-cell labeling noise stream is keyed by
// row and is therefore NOT cacheable — callers replay it per cell exactly
// as the unmemoized path does. The no-guideline labeler (judgeBatchOnly)
// depends on batch composition and is never memoized.
//
// A JudgeMemo is single-goroutine state, built per (attribute, worker); the
// dataset binding and guideline must not mutate while it is in use.
type JudgeMemo struct {
	d       *table.Dataset
	col     int
	detCols []int
	cache   map[string]bool
	keyBuf  []byte
}

// NewJudgeMemo builds a judgement memo for guideline g over attribute col
// of d. A nil guideline yields a nil memo (batch-only labeling is
// inadmissible), which labelBatch treats as dedup-off.
func NewJudgeMemo(d *table.Dataset, col int, g *Guideline) *JudgeMemo {
	if g == nil {
		return nil
	}
	m := &JudgeMemo{
		d:      d,
		col:    col,
		cache:  make(map[string]bool),
		keyBuf: make([]byte, 0, 4*(1+len(g.FDs))),
	}
	for _, fd := range g.FDs {
		m.detCols = append(m.detCols, d.ColIndex(fd.DetAttr))
	}
	return m
}

// judge returns the memoized guideline judgement for tuple row.
func (m *JudgeMemo) judge(c *Client, g *Guideline, row int) bool {
	m.keyBuf = m.keyBuf[:0]
	id := m.d.ValueID(row, m.col)
	m.keyBuf = append(m.keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	for _, dc := range m.detCols {
		id = m.d.ValueID(row, dc)
		m.keyBuf = append(m.keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	if v, ok := m.cache[string(m.keyBuf)]; ok {
		return v
	}
	v := c.judgeWithGuideline(g, m.d, row, m.d.Value(row, m.col))
	m.cache[string(m.keyBuf)] = v
	return v
}
