package llm

// Profile describes a simulated model's capability. The knobs reproduce the
// ordering observed in the paper's Table V: Qwen2.5-72b best, the Llama
// family close behind, small models noisier, and GPT-4o-mini trigger-happy
// (many false "error" labels, hence its low precision in the paper).
type Profile struct {
	// Name is the model identifier, e.g. "Qwen2.5-72b".
	Name string
	// LabelFlipClean is the probability of mislabeling a genuinely clean
	// value as an error (hurts precision).
	LabelFlipClean float64
	// LabelFlipError is the probability of mislabeling a genuinely
	// erroneous value as clean (hurts recall).
	LabelFlipError float64
	// CriteriaSkill in (0,1] is the probability each induced criterion
	// survives; weaker models "forget" checks they should have written.
	CriteriaSkill float64
	// GuidelineSkill in (0,1] scales how much of the distribution analysis
	// the model exploits when labeling; below 1 the model ignores some
	// contextual checks (FDs first, then ranges).
	GuidelineSkill float64
	// Seed makes all stochastic behaviour reproducible.
	Seed int64
}

// Built-in model profiles matching the paper's Table V lineup.
var (
	Qwen72B = Profile{
		Name: "Qwen2.5-72b", LabelFlipClean: 0.005, LabelFlipError: 0.04,
		CriteriaSkill: 1.0, GuidelineSkill: 1.0, Seed: 72,
	}
	Llama70B = Profile{
		Name: "Llama3.1-70b", LabelFlipClean: 0.015, LabelFlipError: 0.08,
		CriteriaSkill: 0.95, GuidelineSkill: 0.95, Seed: 70,
	}
	Llama8B = Profile{
		Name: "Llama3.1-8b", LabelFlipClean: 0.02, LabelFlipError: 0.12,
		CriteriaSkill: 0.85, GuidelineSkill: 0.9, Seed: 8,
	}
	Qwen7B = Profile{
		Name: "Qwen2.5-7b", LabelFlipClean: 0.06, LabelFlipError: 0.25,
		CriteriaSkill: 0.7, GuidelineSkill: 0.7, Seed: 7,
	}
	GPT4oMini = Profile{
		Name: "GPT-4o-mini", LabelFlipClean: 0.18, LabelFlipError: 0.15,
		CriteriaSkill: 0.8, GuidelineSkill: 0.75, Seed: 40,
	}
)

// Profiles lists the built-in models in the order Table V reports them.
func Profiles() []Profile {
	return []Profile{GPT4oMini, Llama8B, Llama70B, Qwen7B, Qwen72B}
}

// ProfileByName looks up a built-in profile; the second result reports
// whether it exists.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
