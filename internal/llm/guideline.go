package llm

import (
	"fmt"
	"strings"
)

// FDRule is a rule-violation check inside a guideline: the determinant
// attribute's value implies an expected value for the guided attribute.
type FDRule struct {
	DetAttr string
	Support float64
	Mapping map[string]string
}

// Guideline is the structured form of the paper's per-attribute error
// detection guideline (Fig. 5): for every error type it carries the
// concrete, data-specific checks the labeler applies. The rendered Text is
// what a real LLM would have produced; its length feeds token accounting.
type Guideline struct {
	Attr        string
	Explanation string

	// Missing values: when the attribute is essentially always populated,
	// a null is an error.
	MissingRate     float64
	MissingExpected bool

	// Pattern violations: shape = run-length-free L2 class sequence.
	DominantShapes map[string]bool
	ShapeStrict    bool // dominant shapes cover enough data to flag deviants

	// Outliers: numeric fences.
	Numeric bool
	Lo, Hi  float64

	// Typos + domain: frequent values for near-miss comparison.
	Domain       map[string]bool // lowercased frequent values
	DomainStrict bool            // attribute is categorical
	TypoTargets  []string
	RareShare    map[string]float64 // value -> share, for outlier-by-rarity
	// TokenVocab holds the attribute's frequent tokens for free-text
	// columns, enabling word-level typo reasoning ("systematic reviw") the
	// way a language model spots misspellings inside longer values.
	TokenVocab map[string]bool

	// Rule violations.
	FDs []FDRule

	// Text is the rendered guideline document.
	Text string
}

// Render produces the guideline document the paper's Fig. 5 sketches,
// grounding each abstract error type in the induced data-specific checks.
func (g *Guideline) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Guideline for attribute %q\n", g.Attr)
	fmt.Fprintf(&b, "Explanation: %s\n", g.Explanation)
	fmt.Fprintf(&b, "**Error Type 1: Missing values**\n- observed missing rate: %.3f\n- treat nulls as errors: %v\n", g.MissingRate, !g.MissingExpected)
	fmt.Fprintf(&b, "**Error Type 2: Pattern violations**\n- dominant shapes: %d (strict=%v)\n", len(g.DominantShapes), g.ShapeStrict)
	if g.Numeric {
		fmt.Fprintf(&b, "**Error Type 3: Outliers**\n- valid numeric range: [%g, %g]\n", g.Lo, g.Hi)
	} else {
		fmt.Fprintf(&b, "**Error Type 3: Outliers**\n- non-numeric attribute; rarity-based detection\n")
	}
	fmt.Fprintf(&b, "**Error Type 4: Typos**\n- %d frequent reference values (strict=%v)\n", len(g.TypoTargets), g.DomainStrict)
	fmt.Fprintf(&b, "**Error Type 5: Rule violations**\n- %d dependency rules:", len(g.FDs))
	for _, fd := range g.FDs {
		fmt.Fprintf(&b, " %s->%s (support %.2f, %d mappings);", fd.DetAttr, g.Attr, fd.Support, len(fd.Mapping))
	}
	b.WriteString("\nBy systematically identifying these errors, the attribute can be cleaned for further analysis.\n")
	return b.String()
}
