package llm

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/criteria"
	"repro/internal/knowledge"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/text"
)

// ShapeOf returns the run-length-free L2 character-class sequence of a
// value ("12:30 pm" -> "DSDWL"). Shapes are coarser than L3 patterns and
// are what the guideline-driven labeler uses for pattern-violation checks:
// free-text attributes have many L3 patterns but few shapes.
func ShapeOf(v string) string {
	p := text.Generalize(v, text.L2)
	var b strings.Builder
	for i := 0; i < len(p); i++ {
		if p[i] == '[' {
			for i < len(p) && p[i] != ']' {
				i++
			}
			continue
		}
		b.WriteByte(p[i])
	}
	return b.String()
}

// DistributionAnalysis simulates the first guideline step of Fig. 5: the
// model is prompted with sampled example tuples and asked for analysis
// functions; the functions are then executed over the whole dataset. Here
// the induced "functions" are the fixed analysis battery of
// stats.ProfileAttribute, and the returned profile is their output. Tokens
// are charged for the prompt (task + examples) and for the function code +
// executed report, mirroring what a real deployment pays.
func (c *Client) DistributionAnalysis(d *table.Dataset, j int, exampleRows []int) *stats.AttributeProfile {
	prompt := fmt.Sprintf(
		"Based on the column '%s' with examples:\n%sPlease generate Python functions to analyze the data distribution from various perspectives.",
		d.Attrs[j], d.SerializeRows(exampleRows))
	prof := stats.ProfileAttribute(d, j)
	completion := analysisFunctionStub(d.Attrs[j]) + prof.Report()
	c.charge(prompt, completion)
	return prof
}

func analysisFunctionStub(attr string) string {
	return fmt.Sprintf(`def distr_analysis_missing(dirty_csv, attr_name="%[1]s"): ...
def distr_analysis_patterns(dirty_csv, attr_name="%[1]s"): ...
def distr_analysis_values(dirty_csv, attr_name="%[1]s"): ...
def distr_analysis_numeric(dirty_csv, attr_name="%[1]s"): ...
`, attr)
}

// GenerateGuideline simulates the second guideline step: given the
// distribution-analysis report, representative examples, and the common
// error descriptions, emit the per-attribute detection guideline. All
// checks are derived from the analysis results and the correlated
// attributes — never from ground truth.
func (c *Client) GenerateGuideline(d *table.Dataset, j int, corr []int, prof *stats.AttributeProfile, exampleRows []int) *Guideline {
	attr := d.Attrs[j]
	prompt := fmt.Sprintf(
		"You are a top data scientist in data cleaning. Generate a guideline for identifying errors in the '%s' attribute of the '%s' table.\nData distribution analysis:\n%s\nExamples with correlated attribute values:\n%s\nError types: missing values, typos, pattern violations, outliers, rule violations.",
		attr, d.Name, prof.Report(), d.SerializeRows(exampleRows))

	g := &Guideline{
		Attr:        attr,
		Explanation: fmt.Sprintf("Attribute %q of table %q: %d records, %d distinct values.", attr, d.Name, prof.Total, prof.Distinct),
	}
	col := d.Column(j)
	n := len(col)

	// Missing values.
	g.MissingRate = float64(prof.Missing) / float64(max(prof.Total, 1))
	g.MissingExpected = g.MissingRate > 0.5

	// Pattern violations via shapes.
	shapeCounts := map[string]int{}
	nonNull := 0
	for _, v := range col {
		if text.IsNullLike(v) {
			continue
		}
		nonNull++
		shapeCounts[ShapeOf(v)]++
	}
	g.DominantShapes = map[string]bool{}
	type sc struct {
		s string
		c int
	}
	scs := make([]sc, 0, len(shapeCounts))
	for s, cnt := range shapeCounts {
		scs = append(scs, sc{s, cnt})
	}
	sort.Slice(scs, func(a, b int) bool {
		if scs[a].c != scs[b].c {
			return scs[a].c > scs[b].c
		}
		return scs[a].s < scs[b].s
	})
	covered := 0
	for _, e := range scs {
		if nonNull > 0 && float64(covered)/float64(nonNull) >= 0.92 {
			break
		}
		g.DominantShapes[e.s] = true
		covered += e.c
	}
	g.ShapeStrict = len(g.DominantShapes) <= 6 && nonNull > 0 &&
		float64(covered)/float64(nonNull) >= 0.92 && len(g.DominantShapes) < len(shapeCounts)

	// Outliers (numeric fences, Tukey k=3).
	nonNullVals := make([]string, 0, nonNull)
	for _, v := range col {
		if !text.IsNullLike(v) {
			nonNullVals = append(nonNullVals, v)
		}
	}
	if text.IsNumericColumn(nonNullVals, 0.9) {
		nums := stats.NumericColumn(nonNullVals)
		q1, q3 := stats.Quantile(nums, 0.25), stats.Quantile(nums, 0.75)
		iqr := q3 - q1
		if iqr == 0 {
			iqr = (q3+q1)*0.25 + 1
		}
		g.Numeric = true
		g.Lo, g.Hi = q1-3*iqr, q3+3*iqr
	}

	// Typos + domain for categorical attributes.
	valCounts := map[string]int{}
	for _, v := range nonNullVals {
		valCounts[strings.ToLower(v)]++
	}
	if nonNull > 0 && float64(len(valCounts))/float64(nonNull) <= 0.2 {
		g.DomainStrict = true
		g.Domain = map[string]bool{}
		g.RareShare = map[string]float64{}
		minFreq := max(2, nonNull/500)
		for v, cnt := range valCounts {
			g.RareShare[v] = float64(cnt) / float64(nonNull)
			if cnt >= minFreq {
				g.Domain[v] = true
				g.TypoTargets = append(g.TypoTargets, v)
			}
		}
		sort.Strings(g.TypoTargets)
		if len(g.TypoTargets) > 300 {
			g.TypoTargets = g.TypoTargets[:300]
		}
	}

	// Free-text columns get a token vocabulary for word-level typo
	// reasoning instead of a value domain.
	if !g.DomainStrict {
		tokCounts := map[string]int{}
		for _, v := range nonNullVals {
			for _, tok := range text.Tokenize(v) {
				tokCounts[tok]++
			}
		}
		minTok := max(3, nonNull/200)
		g.TokenVocab = map[string]bool{}
		for tok, cnt := range tokCounts {
			if cnt >= minTok && len(tok) >= 4 {
				g.TokenVocab[tok] = true
			}
		}
		if len(g.TokenVocab) > 600 {
			g.TokenVocab = nil // vocabulary too diffuse to reason over
		}
	}

	// Rule violations from correlated attributes, subject to guideline
	// skill: weaker models miss dependency reasoning first.
	rng := c.rng("guideline/" + d.Name + "/" + attr)
	for _, q := range corr {
		if q == j {
			continue
		}
		fd := stats.FindFD(d, q, j)
		if fd.Support >= 0.9 && len(fd.Mapping) >= 2 {
			if rng.Float64() > c.profile.GuidelineSkill {
				continue // model failed to reason about this dependency
			}
			g.FDs = append(g.FDs, FDRule{DetAttr: d.Attrs[q], Support: fd.Support, Mapping: fd.Mapping})
		}
	}
	if c.profile.GuidelineSkill < 0.8 && rng.Float64() > c.profile.GuidelineSkill {
		g.ShapeStrict = false // weak model writes vague pattern guidance
	}
	_ = n

	g.Text = g.Render()
	c.charge(prompt, g.Text)
	return g
}

// LabelBatch simulates holistic in-context labeling of one batch of cells
// of attribute j (Section III-C): the prompt carries the guideline and the
// serialized batch (with correlated attribute values); the completion is
// one error/clean verdict per cell. When g is nil the model labels without
// guidelines (the "w/o Guid." ablation): it can then only use the batch
// itself as context, which reproduces the paper's observed degradation on
// datasets with context-dependent errors.
func (c *Client) LabelBatch(d *table.Dataset, j int, rows []int, g *Guideline) []bool {
	return c.labelBatch(d, j, rows, g, nil)
}

// LabelBatchDedup is LabelBatch with the guideline judgement memoized per
// value-ID tuple (see JudgeMemo). Token charging and the per-cell seeded
// noise stream are identical to LabelBatch; only the pure judgement is
// replayed from the cache, so the verdicts are bit-identical. A nil memo
// (including the nil-guideline case, where batch-only labeling is
// inadmissible for caching) degrades to plain LabelBatch.
func (c *Client) LabelBatchDedup(d *table.Dataset, j int, rows []int, g *Guideline, memo *JudgeMemo) []bool {
	return c.labelBatch(d, j, rows, g, memo)
}

func (c *Client) labelBatch(d *table.Dataset, j int, rows []int, g *Guideline, memo *JudgeMemo) []bool {
	var gtext string
	if g != nil {
		gtext = g.Text
	} else {
		gtext = "(no guideline)"
	}
	// The task+guideline prefix is shared across an attribute's batches
	// and billed through the prompt cache; the serialized batch is the
	// per-call suffix.
	prefix := fmt.Sprintf("Task: label each value of attribute '%s' as erroneous or clean.\nGuideline:\n%s\n",
		d.Attrs[j], gtext)
	suffix := "Batch:\n" + d.SerializeRows(rows)

	out := make([]bool, len(rows))
	var batchCounts map[string]int
	var batchNums []float64
	if g == nil {
		batchCounts = map[string]int{}
		for _, r := range rows {
			v := d.Value(r, j)
			batchCounts[strings.ToLower(v)]++
			if f, ok := text.ParseFloat(v); ok {
				batchNums = append(batchNums, f)
			}
		}
	}
	for i, r := range rows {
		v := d.Value(r, j)
		var isErr bool
		if g != nil {
			if memo != nil {
				isErr = memo.judge(c, g, r)
			} else {
				isErr = c.judgeWithGuideline(g, d, r, v)
			}
		} else {
			isErr = judgeBatchOnly(v, batchCounts, batchNums, len(rows))
		}
		// Seeded labeling noise per cell.
		rng := c.rng(fmt.Sprintf("label/%s/%d/%d", d.Name, j, r))
		if isErr {
			if rng.Float64() < c.profile.LabelFlipError {
				isErr = false
			}
		} else if rng.Float64() < c.profile.LabelFlipClean {
			isErr = true
		}
		out[i] = isErr
	}
	completion := verdicts(out)
	c.chargeCached(prefix, suffix, completion)
	return out
}

// judgeWithGuideline applies the guideline's grounded checks to one cell —
// the paper's "LLM examines each value by comparing it against the
// guidelines".
func (c *Client) judgeWithGuideline(g *Guideline, d *table.Dataset, row int, v string) bool {
	if text.IsNullLike(v) {
		return !g.MissingExpected
	}
	if g.ShapeStrict && !g.DominantShapes[ShapeOf(v)] {
		return true
	}
	if g.Numeric {
		f, ok := text.ParseFloat(v)
		if !ok {
			return true // non-numeric intruder in numeric attribute
		}
		if f < g.Lo || f > g.Hi {
			return true
		}
	}
	if g.DomainStrict {
		lv := strings.ToLower(v)
		if !g.Domain[lv] {
			for _, tgt := range g.TypoTargets {
				dist := text.Levenshtein(lv, tgt)
				if dist > 0 && dist <= 2 {
					return true // near-miss of a frequent value: typo
				}
			}
			if g.RareShare[lv] < 0.005 {
				return true // rare unknown value in a categorical domain
			}
		}
	}
	if len(g.TokenVocab) > 0 {
		for _, tok := range text.Tokenize(v) {
			if len(tok) < 5 || g.TokenVocab[tok] {
				continue
			}
			for known := range g.TokenVocab {
				if abs(len(known)-len(tok)) <= 1 {
					if dd := text.Levenshtein(tok, known); dd > 0 && dd <= 1 {
						return true // misspelled word inside a longer value
					}
				}
			}
		}
	}
	for _, fd := range g.FDs {
		det := d.Value(row, colIndexCached(d, fd.DetAttr))
		if want, ok := fd.Mapping[det]; ok && v != want {
			return true
		}
	}
	return false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// judgeBatchOnly is the no-guideline labeler: null checks plus what can be
// inferred from a 20-tuple batch alone.
func judgeBatchOnly(v string, counts map[string]int, nums []float64, batchSize int) bool {
	if text.IsNullLike(v) {
		return true
	}
	lv := strings.ToLower(v)
	// A batch singleton that is a near-miss of a more frequent batch value
	// looks like a typo even without global context.
	if counts[lv] == 1 {
		for other, c := range counts {
			if c >= 2 && other != lv {
				if d := text.Levenshtein(lv, other); d > 0 && d <= 2 {
					return true
				}
			}
		}
	}
	// Crude within-batch outlier check.
	if f, ok := text.ParseFloat(v); ok && len(nums) >= max(8, batchSize/2) {
		mean, std := stats.MeanStd(nums)
		if std > 0 && (f > mean+4*std || f < mean-4*std) {
			return true
		}
	}
	return false
}

func verdicts(labels []bool) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		if l {
			b.WriteString("error")
		} else {
			b.WriteString("clean")
		}
	}
	return b.String()
}

// colIndexCached is a plain lookup; datasets are narrow enough that linear
// scan is cheaper than maintaining a map per call site.
func colIndexCached(d *table.Dataset, attr string) int { return d.ColIndex(attr) }

// GenerateCriteria simulates the criteria-reasoning prompt of Section
// III-B: serialized random sample tuples in, executable error-checking
// criteria out. Weaker models drop criteria they failed to think of.
func (c *Client) GenerateCriteria(d *table.Dataset, j int, sampleRows []int, corr []int) *criteria.Set {
	prompt := fmt.Sprintf(
		"Task: derive executable error-checking criteria for attribute '%s'.\nCommon errors: missing values, typos, pattern violations, outliers, rule violations.\nSampled tuples:\n%s",
		d.Attrs[j], d.SerializeRows(sampleRows))
	set := criteria.Induce(d, j, sampleRows, corr, criteria.DefaultInduceOptions())
	if c.profile.CriteriaSkill < 1 {
		rng := c.rng("criteria/" + d.Name + "/" + d.Attrs[j])
		kept := set.Criteria[:0]
		for _, cr := range set.Criteria {
			if rng.Float64() <= c.profile.CriteriaSkill {
				kept = append(kept, cr)
			}
		}
		set.Criteria = kept
	}
	var names []string
	for _, cr := range set.Criteria {
		names = append(names, "def "+cr.Name+"(row, attr): ...")
	}
	c.charge(prompt, strings.Join(names, "\n"))
	return set
}

// RefineCriteria simulates the contrastive in-context prompting of
// Algorithm 1 (Lines 4-7): clean and erroneous value groups in, enhanced
// criteria out.
func (c *Client) RefineCriteria(set *criteria.Set, cleanVals, errVals []string) *criteria.Set {
	prompt := fmt.Sprintf(
		"Refine error-checking criteria for attribute '%s'.\nClean examples: %s\nErroneous examples: %s",
		set.Attr, strings.Join(cleanVals, " | "), strings.Join(errVals, " | "))
	refined := criteria.Refine(set, cleanVals, errVals)
	var names []string
	for _, cr := range refined.Criteria {
		names = append(names, cr.Name)
	}
	c.charge(prompt, strings.Join(names, "\n"))
	return refined
}

// AugmentErrors simulates LLM-based semantic error augmentation (Algorithm
// 1, Line 25): given clean examples and observed error descriptions,
// produce n realistic new error values for the attribute. The generator
// mutates clean values with the same five error mechanisms the taxonomy
// describes, so augmented errors stay semantically plausible.
func (c *Client) AugmentErrors(attr string, cleanVals, errVals []string, n int) []string {
	if len(cleanVals) == 0 || n <= 0 {
		return nil
	}
	prompt := fmt.Sprintf(
		"Task: generate %d realistic erroneous variants for attribute '%s'.\nExample values: %s\nError examples: %s",
		n, attr, strings.Join(sliceCap(cleanVals, 20), " | "), strings.Join(sliceCap(errVals, 20), " | "))
	rng := c.rng("augment/" + attr)
	out := make([]string, 0, n)
	for len(out) < n {
		src := cleanVals[rng.Intn(len(cleanVals))]
		v := MutateValue(rng, src)
		if v != src {
			out = append(out, v)
		}
	}
	c.charge(prompt, strings.Join(out, " | "))
	return out
}

// MutateValue applies one random error mechanism to a clean value: typo,
// missing placeholder, pattern mangling, or numeric outlier scaling.
// Exported because the error-generation substrate shares it.
func MutateValue(rng *rand.Rand, src string) string {
	switch rng.Intn(4) {
	case 0: // typo
		return Typo(rng, src)
	case 1: // missing
		placeholders := []string{"", "NULL", "N/A", "-"}
		return placeholders[rng.Intn(len(placeholders))]
	case 2: // pattern mangling
		return MangleFormat(rng, src)
	default: // outlier (numeric) or charset noise (textual)
		if f, ok := text.ParseFloat(src); ok {
			scale := []float64{100, 0.01, -1, 1000}[rng.Intn(4)]
			return trimFloat(f * scale)
		}
		return Typo(rng, src)
	}
}

// Typo injects a keyboard-plausible edit (substitution, deletion,
// transposition, or insertion) into a non-empty string.
func Typo(rng *rand.Rand, s string) string {
	rs := []rune(s)
	if len(rs) == 0 {
		return "x"
	}
	i := rng.Intn(len(rs))
	switch rng.Intn(4) {
	case 0: // substitution with a nearby letter
		rs[i] = nearbyRune(rng, rs[i])
	case 1: // deletion
		rs = append(rs[:i], rs[i+1:]...)
	case 2: // transposition
		if len(rs) >= 2 {
			k := i
			if k == len(rs)-1 {
				k--
			}
			rs[k], rs[k+1] = rs[k+1], rs[k]
		} else {
			rs[i] = nearbyRune(rng, rs[i])
		}
	default: // insertion
		rs = append(rs[:i], append([]rune{nearbyRune(rng, rs[i])}, rs[i:]...)...)
	}
	return string(rs)
}

var keyboardRows = []string{"qwertyuiop", "asdfghjkl", "zxcvbnm", "1234567890"}

func nearbyRune(rng *rand.Rand, r rune) rune {
	lower := r
	if r >= 'A' && r <= 'Z' {
		lower = r + 32
	}
	for _, row := range keyboardRows {
		if idx := strings.IndexRune(row, lower); idx >= 0 {
			var cand []byte
			if idx > 0 {
				cand = append(cand, row[idx-1])
			}
			if idx < len(row)-1 {
				cand = append(cand, row[idx+1])
			}
			ch := rune(cand[rng.Intn(len(cand))])
			if r >= 'A' && r <= 'Z' {
				ch -= 32
			}
			return ch
		}
	}
	return rune('a' + rng.Intn(26))
}

// MangleFormat produces a pattern violation: case flips, symbol injection,
// or whitespace removal, changing the value's shape.
func MangleFormat(rng *rand.Rand, s string) string {
	switch rng.Intn(3) {
	case 0:
		if strings.Contains(s, " ") {
			return strings.ReplaceAll(s, " ", "")
		}
		return strings.ToUpper(s)
	case 1:
		return s + "!!"
	default:
		if s == "" {
			return "??"
		}
		return strings.ToUpper(s[:1]) + "#" + s[1:]
	}
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// DetectTupleErrors simulates the FM_ED baseline's per-tuple prompt ("Is
// there an error in this tuple?"): the model sees one serialized tuple and
// its own pretrained knowledge (kb), and returns one verdict per cell.
// Without cross-tuple context it can catch missing values and
// known-entity typos but not pattern violations, outliers, or rule
// violations — Table I's characterization.
func (c *Client) DetectTupleErrors(attrs []string, row []string, kb *knowledge.Base) []bool {
	var sb strings.Builder
	for i, a := range attrs {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a)
		sb.WriteString(": ")
		sb.WriteString(row[i])
	}
	prompt := "Is there an error in this tuple? Answer per attribute.\n" + sb.String()
	out := make([]bool, len(attrs))
	for i, a := range attrs {
		v := row[i]
		switch {
		case text.IsNullLike(v):
			out[i] = true
		case kb != nil && kb.HasType(a) && !kb.Contains(a, v):
			// The model "knows" this attribute's entity universe and the
			// value is not in it.
			out[i] = true
		case looksMalformed(v):
			// Glaring surface junk ("Chicago!!", "B#oston") is visible to
			// a pretrained model even without cross-tuple context.
			out[i] = true
		}
		rng := c.rng(fmt.Sprintf("fmed/%s/%s/%s", a, v, sb.String()[:min(24, sb.Len())]))
		if out[i] {
			if rng.Float64() < c.profile.LabelFlipError {
				out[i] = false
			}
		} else if rng.Float64() < c.profile.LabelFlipClean {
			out[i] = true
		}
	}
	c.charge(prompt, verdicts(out))
	return out
}

// looksMalformed reports surface-level junk any pretrained model notices
// in isolation: doubled terminal exclamations or a hash spliced between
// letters. Deliberately narrow — per-tuple detection must not see
// distributional anomalies (that is the whole point of Table I).
func looksMalformed(v string) bool {
	if strings.HasSuffix(v, "!!") {
		return true
	}
	for i := 1; i+1 < len(v); i++ {
		if v[i] == '#' && isAlnum(v[i-1]) && isAlnum(v[i+1]) {
			return true
		}
	}
	return false
}

func isAlnum(b byte) bool {
	return (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

func sliceCap(xs []string, n int) []string {
	if len(xs) > n {
		return xs[:n]
	}
	return xs
}
