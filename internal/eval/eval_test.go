package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/errgen"
	"repro/internal/table"
)

func masks() (pred, truth [][]bool) {
	// 2x3 grid: one TP, one FP, one FN, three TN.
	pred = [][]bool{{true, true, false}, {false, false, false}}
	truth = [][]bool{{true, false, true}, {false, false, false}}
	return
}

func TestCompute(t *testing.T) {
	pred, truth := masks()
	m := Compute(pred, truth)
	if m.TP != 1 || m.FP != 1 || m.FN != 1 {
		t.Fatalf("counts = %d/%d/%d", m.TP, m.FP, m.FN)
	}
	if m.Precision != 0.5 || m.Recall != 0.5 || m.F1 != 0.5 {
		t.Errorf("P/R/F1 = %v/%v/%v, want 0.5 each", m.Precision, m.Recall, m.F1)
	}
}

func TestComputeDegenerate(t *testing.T) {
	empty := [][]bool{{false, false}}
	m := Compute(empty, empty)
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Errorf("all-negative case should be zeros, got %+v", m)
	}
	allPred := [][]bool{{true, true}}
	m = Compute(allPred, [][]bool{{true, true}})
	if m.F1 != 1 {
		t.Errorf("perfect prediction F1 = %v, want 1", m.F1)
	}
}

// Property: F1 is the harmonic mean of precision and recall and lies
// between min and max of the two.
func TestF1HarmonicProperty(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		m := fromCounts(int(tp), int(fp), int(fn))
		if m.Precision+m.Recall == 0 {
			return m.F1 == 0
		}
		want := 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
		return math.Abs(m.F1-want) < 1e-12 &&
			m.F1 <= math.Max(m.Precision, m.Recall)+1e-12 &&
			m.F1 >= math.Min(m.Precision, m.Recall)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComputeAgainst(t *testing.T) {
	clean := table.New("t", []string{"a", "b"})
	clean.MustAppendRow([]string{"x", "y"})
	dirty := clean.Clone()
	dirty.SetValue(0, 1, "z")
	pred := [][]bool{{false, true}}
	m, err := ComputeAgainst(pred, dirty, clean)
	if err != nil {
		t.Fatal(err)
	}
	if m.F1 != 1 {
		t.Errorf("F1 = %v, want 1", m.F1)
	}
	if _, err := ComputeAgainst(pred, dirty, table.New("t", []string{"a"})); err == nil {
		t.Error("shape mismatch must error")
	}
}

func TestPerType(t *testing.T) {
	clean := table.New("t", []string{"Name", "Score"})
	for i := 0; i < 50; i++ {
		clean.MustAppendRow([]string{"Alice", "10"})
	}
	dirty := clean.Clone()
	dirty.SetValue(0, 0, "")      // MV
	dirty.SetValue(1, 1, "10000") // O (numeric shift)
	pred := [][]bool{}
	for i := 0; i < 50; i++ {
		pred = append(pred, []bool{false, false})
	}
	pred[0][0] = true // catch the MV, miss the outlier
	byType, err := PerType(pred, dirty, clean)
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := byType[errgen.Missing]; !ok || m.Recall != 1 {
		t.Errorf("MV recall = %+v, want 1", byType[errgen.Missing])
	}
	if m, ok := byType[errgen.Outlier]; !ok || m.Recall != 0 {
		t.Errorf("O recall = %+v, want 0", byType[errgen.Outlier])
	}
	if _, ok := byType[errgen.RuleViolation]; ok {
		t.Error("absent error types must not appear")
	}
}

func TestStringAndRowFormatting(t *testing.T) {
	m := Metrics{Precision: 0.5, Recall: 0.25, F1: 1.0 / 3.0}
	if got := m.String(); got != "0.500 0.250 0.333" {
		t.Errorf("String() = %q", got)
	}
	row := Row("ZeroED", []Metrics{m, m})
	if !strings.HasPrefix(row, "ZeroED") || strings.Count(row, "|") != 2 {
		t.Errorf("Row = %q", row)
	}
	h := Header([]string{"Hospital", "Flights"})
	if !strings.Contains(h, "Hospital") || !strings.Contains(h, "Flights") {
		t.Errorf("Header = %q", h)
	}
}
