// Package eval implements the evaluation machinery of Section IV:
// cell-level precision/recall/F1 against ground truth, per-error-type
// metrics (Fig. 11), and formatting helpers that render results in the
// layout of the paper's tables.
package eval

import (
	"fmt"
	"strings"

	"repro/internal/errgen"
	"repro/internal/table"
)

// Metrics holds the three headline numbers of every table in the paper.
type Metrics struct {
	Precision  float64
	Recall     float64
	F1         float64
	TP, FP, FN int
}

// String renders "P/R/F1" with three decimals, the paper's format.
func (m Metrics) String() string {
	return fmt.Sprintf("%.3f %.3f %.3f", m.Precision, m.Recall, m.F1)
}

// Compute scores a prediction mask against the ground-truth error mask.
func Compute(pred, truth [][]bool) Metrics {
	var tp, fp, fn int
	for i := range truth {
		for j := range truth[i] {
			p := pred[i][j]
			t := truth[i][j]
			switch {
			case p && t:
				tp++
			case p && !t:
				fp++
			case !p && t:
				fn++
			}
		}
	}
	return fromCounts(tp, fp, fn)
}

func fromCounts(tp, fp, fn int) Metrics {
	m := Metrics{TP: tp, FP: fp, FN: fn}
	if tp+fp > 0 {
		m.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		m.Recall = float64(tp) / float64(tp+fn)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// ComputeAgainst scores predictions for a dirty/clean dataset pair.
func ComputeAgainst(pred [][]bool, dirty, clean *table.Dataset) (Metrics, error) {
	truth, err := table.ErrorMask(dirty, clean)
	if err != nil {
		return Metrics{}, err
	}
	return Compute(pred, truth), nil
}

// PerType scores predictions separately for each error type, classifying
// each true error with the Section IV-A rules. Precision cannot be
// attributed to a type (false positives have no type), so per-type rows
// report recall-oriented F1 the way Fig. 11 does: precision is shared
// (overall), recall is type-specific.
func PerType(pred [][]bool, dirty, clean *table.Dataset) (map[errgen.Type]Metrics, error) {
	truth, err := table.ErrorMask(dirty, clean)
	if err != nil {
		return nil, err
	}
	overall := Compute(pred, truth)
	cls := errgen.NewClassifier(clean)
	tp := map[errgen.Type]int{}
	fn := map[errgen.Type]int{}
	for i := range truth {
		var dirtyRow []string // materialized once per row with errors
		for j := range truth[i] {
			if !truth[i][j] {
				continue
			}
			if dirtyRow == nil {
				dirtyRow = dirty.Row(i)
			}
			t := cls.Classify(dirtyRow, i, j)
			if pred[i][j] {
				tp[t]++
			} else {
				fn[t]++
			}
		}
	}
	out := map[errgen.Type]Metrics{}
	for _, t := range errgen.AllTypes() {
		if tp[t]+fn[t] == 0 {
			continue
		}
		m := Metrics{TP: tp[t], FN: fn[t], Precision: overall.Precision}
		m.Recall = float64(tp[t]) / float64(tp[t]+fn[t])
		if m.Precision+m.Recall > 0 {
			m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
		}
		out[t] = m
	}
	return out, nil
}

// Row formats one method's metrics across datasets as a fixed-width table
// row.
func Row(name string, cells []Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", name)
	for _, m := range cells {
		fmt.Fprintf(&b, " | %.3f %.3f %.3f", m.Precision, m.Recall, m.F1)
	}
	return b.String()
}

// Header formats the dataset header line matching Row's layout.
func Header(datasets []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "Method")
	for _, d := range datasets {
		fmt.Fprintf(&b, " | %-17s", d+" P/R/F1")
	}
	return b.String()
}
