package criteria

import "repro/internal/table"

// SetMemo memoizes one Set's per-criterion verdicts against one dataset
// binding, keyed by value ID — the fit-phase counterpart of the scoring
// dedup cache. Admissibility: for every kind except FD, EvalAt(d, row, col)
// reads only d.Value(row, col), and the value-ID→string mapping of a
// binding is injective, so the verdict is a pure function of the cell's
// value ID; an FD criterion additionally reads the determinant column's
// value, so its verdict is a pure function of the (own ID, determinant ID)
// pair. Criteria with a determinant attribute missing from the schema
// evaluate against an empty determinant for every row and key on the own ID
// alone. Each cached entry is the exact boolean EvalAt would recompute, so
// every aggregate built from memoized verdicts (accuracy counts, pass
// rates) is bit-identical to the unmemoized computation.
//
// A SetMemo is single-goroutine state: the pipeline builds one per
// (attribute, stage-worker) and never shares it. The dataset binding and
// the criteria must not mutate while the memo is in use.
type SetMemo struct {
	d     *table.Dataset
	col   int
	set   *Set
	memos []critMemo
}

type critMemo struct {
	c     *Criterion
	det   int // determinant column index for FD criteria, -1 otherwise
	cache map[uint64]bool
}

// NewSetMemo builds a verdict memo for set s over attribute col of d.
func NewSetMemo(d *table.Dataset, col int, s *Set) *SetMemo {
	m := &SetMemo{d: d, col: col, set: s, memos: make([]critMemo, len(s.Criteria))}
	for i, c := range s.Criteria {
		det := -1
		if c.Kind == KindFD {
			det = d.ColIndex(c.DetAttr)
		}
		m.memos[i] = critMemo{c: c, det: det, cache: make(map[uint64]bool)}
	}
	return m
}

// Set returns the criteria set the memo evaluates.
func (m *SetMemo) Set() *Set { return m.set }

// evalAt returns criterion k's memoized verdict for tuple row.
func (m *SetMemo) evalAt(k, row int) bool {
	cm := &m.memos[k]
	key := uint64(m.d.ValueID(row, m.col))
	if cm.det >= 0 {
		key |= uint64(m.d.ValueID(row, cm.det)) << 32
	}
	if v, ok := cm.cache[key]; ok {
		return v
	}
	v := cm.c.EvalAt(m.d, row, m.col)
	cm.cache[key] = v
	return v
}

// PassRateAt is the memoized form of Set.PassRateAt over the memo's
// attribute: the fraction of criteria tuple row passes.
func (m *SetMemo) PassRateAt(row int) float64 {
	if len(m.set.Criteria) == 0 {
		return 1
	}
	pass := 0
	for k := range m.memos {
		if m.evalAt(k, row) {
			pass++
		}
	}
	return float64(pass) / float64(len(m.set.Criteria))
}

// Verify is the memoized form of VerifySetAt: it removes criteria whose
// accuracy on believed-clean rows falls below threshold and returns a memo
// over the surviving set. Surviving criteria keep their verdict caches, so
// the verification pass warms the caches the subsequent pass-rate pass
// reads. Empty cleanRows yields accuracy 1 for every criterion, matching
// AccuracyOnCleanAt.
func (m *SetMemo) Verify(cleanRows []int, threshold float64) *SetMemo {
	out := &SetMemo{d: m.d, col: m.col, set: &Set{Attr: m.set.Attr}}
	for k, cm := range m.memos {
		acc := 1.0
		if len(cleanRows) > 0 {
			pass := 0
			for _, r := range cleanRows {
				if m.evalAt(k, r) {
					pass++
				}
			}
			acc = float64(pass) / float64(len(cleanRows))
		}
		if acc >= threshold {
			out.set.Criteria = append(out.set.Criteria, cm.c)
			out.memos = append(out.memos, cm)
		}
	}
	return out
}
