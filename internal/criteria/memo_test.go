package criteria

import (
	"math"
	"testing"

	"repro/internal/table"
)

// memoDataset builds a two-column dataset with heavy value duplication,
// some dirty cells, and an FD between the columns — enough to exercise
// every memo key shape (own-ID-only and (own, determinant) pairs).
func memoDataset() *table.Dataset {
	d := table.New("t", []string{"Education", "Salary"})
	for i := 0; i < 25; i++ {
		d.MustAppendRow([]string{"Bachelor", "50000"})
		d.MustAppendRow([]string{"Master", "70000"})
		d.MustAppendRow([]string{"Phd", "90000"})
	}
	d.MustAppendRow([]string{"Bachelor", "70000"}) // FD violation
	d.MustAppendRow([]string{"Bachelr", "50000"})  // typo
	d.MustAppendRow([]string{"", "90000"})         // missing
	return d
}

// memoSet induces a criteria set that includes an FD criterion, so the memo
// exercises the pair-keyed cache.
func memoSet(t *testing.T, d *table.Dataset) *Set {
	t.Helper()
	s := Induce(d, 0, allRows(d), []int{1}, DefaultInduceOptions())
	hasFD := false
	for _, c := range s.Criteria {
		if c.Kind == KindFD {
			hasFD = true
		}
	}
	if !hasFD {
		t.Fatal("fixture did not induce an FD criterion")
	}
	return s
}

// TestSetMemoPassRateMatchesDirect pins the memo's exactness: for every
// row, the memoized pass rate is bit-identical to Set.PassRateAt — on
// first (cold) and repeated (cached) evaluation alike.
func TestSetMemoPassRateMatchesDirect(t *testing.T) {
	d := memoDataset()
	s := memoSet(t, d)
	m := NewSetMemo(d, 0, s)
	for pass := 0; pass < 2; pass++ {
		for r := 0; r < d.NumRows(); r++ {
			got := m.PassRateAt(r)
			want := s.PassRateAt(d, r, 0)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("pass %d row %d: memo %v != direct %v", pass, r, got, want)
			}
		}
	}
}

// TestSetMemoVerifyMatchesDirect pins Verify against VerifySetAt: same
// surviving criteria, in the same order, and the surviving memo keeps
// answering identically to the filtered set.
func TestSetMemoVerifyMatchesDirect(t *testing.T) {
	d := memoDataset()
	s := memoSet(t, d)
	clean := allRows(d)[:60]

	direct := VerifySetAt(s, d, 0, clean, 0.5)
	m := NewSetMemo(d, 0, s).Verify(clean, 0.5)
	if len(m.Set().Criteria) != len(direct.Criteria) {
		t.Fatalf("memo kept %d criteria, direct kept %d", len(m.Set().Criteria), len(direct.Criteria))
	}
	for i, c := range m.Set().Criteria {
		if c != s.Criteria[indexOf(s, direct.Criteria[i])] {
			t.Fatalf("criterion %d differs: memo %v vs direct %v", i, c, direct.Criteria[i])
		}
	}
	for r := 0; r < d.NumRows(); r++ {
		got, want := m.PassRateAt(r), direct.PassRateAt(d, r, 0)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("post-verify row %d: memo %v != direct %v", r, got, want)
		}
	}

	// Empty clean set: every criterion survives (accuracy defaults to 1).
	m2 := NewSetMemo(d, 0, s).Verify(nil, 0.5)
	if len(m2.Set().Criteria) != len(s.Criteria) {
		t.Fatalf("empty-clean Verify kept %d of %d criteria", len(m2.Set().Criteria), len(s.Criteria))
	}
}

// TestSetMemoActuallyDedups asserts the memo holds far fewer entries than
// row-by-row evaluation would: the fixture has ~5 distinct values over 78
// rows, so each criterion's cache must stay small.
func TestSetMemoActuallyDedups(t *testing.T) {
	d := memoDataset()
	s := memoSet(t, d)
	m := NewSetMemo(d, 0, s)
	for r := 0; r < d.NumRows(); r++ {
		m.PassRateAt(r)
	}
	for k, cm := range m.memos {
		if len(cm.cache) >= d.NumRows() {
			t.Errorf("criterion %d (%s) cached %d entries for %d rows — no dedup",
				k, cm.c.Name, len(cm.cache), d.NumRows())
		}
	}
}

func indexOf(s *Set, c *Criterion) int {
	for i, x := range s.Criteria {
		if x == c {
			return i
		}
	}
	return -1
}
