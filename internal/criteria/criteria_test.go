package criteria

import (
	"testing"

	"repro/internal/table"
)

func row(kv ...string) map[string]string {
	m := map[string]string{}
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

func TestNotNull(t *testing.T) {
	c := &Criterion{Kind: KindNotNull, Attr: "x", Name: "nn"}
	if c.Eval(row("x", ""), "x") {
		t.Error("empty must fail not_null")
	}
	if c.Eval(row("x", "NULL"), "x") {
		t.Error("NULL placeholder must fail not_null")
	}
	if !c.Eval(row("x", "abc"), "x") {
		t.Error("non-null must pass")
	}
}

func TestNullPassesOtherKinds(t *testing.T) {
	c := &Criterion{Kind: KindRange, Attr: "x", Lo: 0, Hi: 10}
	if !c.Eval(row("x", ""), "x") {
		t.Error("null-like value must pass non-null-kind criteria")
	}
}

func TestPattern(t *testing.T) {
	c := &Criterion{Kind: KindPattern, Attr: "x", Patterns: map[string]bool{"D[5]": true}}
	if !c.Eval(row("x", "80000"), "x") {
		t.Error("5-digit value must pass D[5]")
	}
	if c.Eval(row("x", "80k"), "x") {
		t.Error("wrong pattern must fail")
	}
}

func TestDomain(t *testing.T) {
	c := &Criterion{Kind: KindDomain, Attr: "x", Domain: map[string]bool{"phd": true, "master": true}}
	if !c.Eval(row("x", "PhD"), "x") {
		t.Error("domain check is case-insensitive")
	}
	if c.Eval(row("x", "Doctorate"), "x") {
		t.Error("out-of-domain must fail")
	}
}

func TestRange(t *testing.T) {
	c := &Criterion{Kind: KindRange, Attr: "x", Lo: 1, Hi: 12}
	if !c.Eval(row("x", "7"), "x") {
		t.Error("in-range must pass")
	}
	if c.Eval(row("x", "25"), "x") {
		t.Error("out-of-range must fail")
	}
	if c.Eval(row("x", "abc"), "x") {
		t.Error("non-numeric must fail range")
	}
}

func TestFD(t *testing.T) {
	c := &Criterion{Kind: KindFD, Attr: "Capital", DetAttr: "Country",
		Mapping: map[string]string{"France": "Paris"}}
	if !c.Eval(row("Country", "France", "Capital", "Paris"), "Capital") {
		t.Error("consistent FD must pass")
	}
	if c.Eval(row("Country", "France", "Capital", "Lyon"), "Capital") {
		t.Error("violating FD must fail")
	}
	if !c.Eval(row("Country", "Japan", "Capital", "Tokyo"), "Capital") {
		t.Error("unseen determinant must pass (no evidence)")
	}
}

func TestCharset(t *testing.T) {
	c := &Criterion{Kind: KindCharset, Attr: "x", AllowedClasses: map[byte]bool{'D': true}}
	if !c.Eval(row("x", "12345"), "x") {
		t.Error("digits must pass digit charset")
	}
	if c.Eval(row("x", "12a45"), "x") {
		t.Error("letter must fail digit charset")
	}
}

func TestLength(t *testing.T) {
	c := &Criterion{Kind: KindLength, Attr: "x", MinLen: 2, MaxLen: 4}
	if !c.Eval(row("x", "abc"), "x") || c.Eval(row("x", "a"), "x") || c.Eval(row("x", "abcde"), "x") {
		t.Error("length bounds not enforced")
	}
}

func TestTypoDomain(t *testing.T) {
	c := &Criterion{Kind: KindTypoDomain, Attr: "x",
		TypoTargets: []string{"Bachelor", "Master"}, MaxDist: 2}
	if !c.Eval(row("x", "Bachelor"), "x") {
		t.Error("exact frequent value must pass")
	}
	if c.Eval(row("x", "Bechxlor"), "x") {
		t.Error("near-miss of a frequent value must fail (likely typo)")
	}
	if !c.Eval(row("x", "Doctorate"), "x") {
		t.Error("distant value must pass typo check")
	}
}

func TestValueFreq(t *testing.T) {
	c := &Criterion{Kind: KindValueFreq, Attr: "x", MinCount: 2,
		Counts: map[string]int{"a": 5, "b": 1}}
	if !c.Eval(row("x", "a"), "x") || c.Eval(row("x", "b"), "x") {
		t.Error("value frequency threshold not enforced")
	}
}

func TestNumericType(t *testing.T) {
	c := &Criterion{Kind: KindNumericType, Attr: "x"}
	if !c.Eval(row("x", "3.14"), "x") || c.Eval(row("x", "pi"), "x") {
		t.Error("numeric parse criterion wrong")
	}
}

func TestSetFeaturesAndPassRate(t *testing.T) {
	s := &Set{Attr: "x", Criteria: []*Criterion{
		{Kind: KindNotNull, Attr: "x"},
		{Kind: KindRange, Attr: "x", Lo: 0, Hi: 10},
	}}
	f := s.Features(row("x", "5"))
	if len(f) != 2 || f[0] != 1 || f[1] != 1 {
		t.Errorf("Features = %v, want [1 1]", f)
	}
	f = s.Features(row("x", "99"))
	if f[0] != 1 || f[1] != 0 {
		t.Errorf("Features = %v, want [1 0]", f)
	}
	if got := s.PassRate(row("x", "99")); got != 0.5 {
		t.Errorf("PassRate = %v, want 0.5", got)
	}
	empty := &Set{Attr: "x"}
	if got := empty.PassRate(row("x", "z")); got != 1 {
		t.Errorf("empty set PassRate = %v, want 1", got)
	}
}

func TestAccuracyAndVerifySet(t *testing.T) {
	good := &Criterion{Kind: KindRange, Attr: "x", Lo: 0, Hi: 100, Name: "good"}
	bad := &Criterion{Kind: KindRange, Attr: "x", Lo: 0, Hi: 1, Name: "bad"}
	rows := []map[string]string{row("x", "50"), row("x", "60"), row("x", "70")}
	if got := AccuracyOnClean(good, "x", rows); got != 1 {
		t.Errorf("good accuracy = %v, want 1", got)
	}
	if got := AccuracyOnClean(bad, "x", rows); got != 0 {
		t.Errorf("bad accuracy = %v, want 0", got)
	}
	s := &Set{Attr: "x", Criteria: []*Criterion{good, bad}}
	v := VerifySet(s, rows, 0.5)
	if len(v.Criteria) != 1 || v.Criteria[0].Name != "good" {
		t.Errorf("VerifySet kept %v", v.Criteria)
	}
	if got := AccuracyOnClean(good, "x", nil); got != 1 {
		t.Errorf("empty rows accuracy = %v, want 1", got)
	}
}

func eduDataset() *table.Dataset {
	d := table.New("t", []string{"Education", "Salary"})
	for i := 0; i < 30; i++ {
		d.MustAppendRow([]string{"Bachelor", "50000"})
		d.MustAppendRow([]string{"Master", "70000"})
		d.MustAppendRow([]string{"Phd", "90000"})
	}
	return d
}

func allRows(d *table.Dataset) []int {
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func TestInduceCategorical(t *testing.T) {
	d := eduDataset()
	s := Induce(d, 0, allRows(d), []int{1}, DefaultInduceOptions())
	if len(s.Criteria) == 0 {
		t.Fatal("no criteria induced")
	}
	kinds := map[Kind]bool{}
	for _, c := range s.Criteria {
		kinds[c.Kind] = true
	}
	if !kinds[KindDomain] {
		t.Error("categorical attribute should induce a domain criterion")
	}
	if !kinds[KindTypoDomain] {
		t.Error("categorical attribute should induce a typo criterion")
	}
	// Clean value passes everything, typo fails at least one criterion.
	clean := row("Education", "Master", "Salary", "70000")
	typo := row("Education", "Mastxr", "Salary", "70000")
	if got := s.PassRate(clean); got != 1 {
		t.Errorf("clean PassRate = %v, want 1", got)
	}
	if got := s.PassRate(typo); got >= 1 {
		t.Error("typo must fail at least one criterion")
	}
}

func TestInduceNumeric(t *testing.T) {
	d := eduDataset()
	s := Induce(d, 1, allRows(d), []int{0}, DefaultInduceOptions())
	kinds := map[Kind]bool{}
	for _, c := range s.Criteria {
		kinds[c.Kind] = true
	}
	if !kinds[KindRange] || !kinds[KindNumericType] {
		t.Errorf("numeric attribute should induce range+numeric criteria, got %v", kinds)
	}
	outlier := row("Education", "Phd", "Salary", "9000000")
	if got := s.PassRate(outlier); got >= 1 {
		t.Error("extreme outlier must fail at least one criterion")
	}
}

func TestInduceFD(t *testing.T) {
	d := table.New("t", []string{"Country", "Capital", "Pop"})
	for i := 0; i < 20; i++ {
		d.MustAppendRow([]string{"France", "Paris", "67"})
		d.MustAppendRow([]string{"Japan", "Tokyo", "125"})
	}
	s := Induce(d, 1, allRows(d), []int{0}, DefaultInduceOptions())
	var fd *Criterion
	for _, c := range s.Criteria {
		if c.Kind == KindFD {
			fd = c
		}
	}
	if fd == nil {
		t.Fatal("FD criterion not induced from perfectly dependent attribute")
	}
	if !fd.Eval(row("Country", "France", "Capital", "Paris"), "Capital") {
		t.Error("consistent pair must pass")
	}
	if fd.Eval(row("Country", "France", "Capital", "Tokyo"), "Capital") {
		t.Error("rule violation must fail")
	}
}

func TestInduceEmptySample(t *testing.T) {
	d := eduDataset()
	s := Induce(d, 0, nil, nil, DefaultInduceOptions())
	if len(s.Criteria) != 0 {
		t.Error("empty sample should induce nothing")
	}
}

func TestRefineDomain(t *testing.T) {
	s := &Set{Attr: "x", Criteria: []*Criterion{
		{Kind: KindDomain, Attr: "x", Domain: map[string]bool{"a": true, "bad": true}},
	}}
	r := Refine(s, []string{"c"}, []string{"bad"})
	dom := r.Criteria[0].Domain
	if !dom["a"] || !dom["c"] || dom["bad"] {
		t.Errorf("refined domain = %v", dom)
	}
	// Original untouched.
	if !s.Criteria[0].Domain["bad"] {
		t.Error("Refine must not mutate input")
	}
}

func TestRefineRangeExpands(t *testing.T) {
	s := &Set{Attr: "x", Criteria: []*Criterion{
		{Kind: KindRange, Attr: "x", Lo: 10, Hi: 20},
	}}
	r := Refine(s, []string{"5", "25"}, nil)
	c := r.Criteria[0]
	if c.Lo != 5 || c.Hi != 25 {
		t.Errorf("range = [%v,%v], want [5,25]", c.Lo, c.Hi)
	}
}

func TestRefinePatternKeepsCleanShared(t *testing.T) {
	s := &Set{Attr: "x", Criteria: []*Criterion{
		{Kind: KindPattern, Attr: "x", Patterns: map[string]bool{"D[5]": true}},
	}}
	// An error value shares D[5] with a clean value: pattern stays.
	r := Refine(s, []string{"12345"}, []string{"99999"})
	if !r.Criteria[0].Patterns["D[5]"] {
		t.Error("pattern shared with clean values must not be dropped")
	}
	// An error-only pattern is dropped.
	s2 := &Set{Attr: "x", Criteria: []*Criterion{
		{Kind: KindPattern, Attr: "x", Patterns: map[string]bool{"D[5]": true, "u[3]": true}},
	}}
	r2 := Refine(s2, []string{"12345"}, []string{"abc"})
	if r2.Criteria[0].Patterns["u[3]"] {
		t.Error("error-only pattern must be dropped")
	}
}

// Property: Features length always equals the criteria count and contains
// only 0/1 values.
func TestFeaturesShapeProperty(t *testing.T) {
	d := eduDataset()
	s := Induce(d, 0, allRows(d), []int{1}, DefaultInduceOptions())
	for i := 0; i < d.NumRows(); i += 7 {
		f := s.Features(d.RowMap(i))
		if len(f) != len(s.Criteria) {
			t.Fatalf("features len %d != criteria %d", len(f), len(s.Criteria))
		}
		for _, b := range f {
			if b != 0 && b != 1 {
				t.Fatalf("non-binary feature %v", b)
			}
		}
	}
}

func TestVerifySetThresholdEdge(t *testing.T) {
	// A criterion passing exactly 50% of clean rows survives at 0.5.
	c := &Criterion{Kind: KindRange, Attr: "x", Lo: 0, Hi: 10, Name: "edge"}
	rows := []map[string]string{row("x", "5"), row("x", "50")}
	s := &Set{Attr: "x", Criteria: []*Criterion{c}}
	if v := VerifySet(s, rows, 0.5); len(v.Criteria) != 1 {
		t.Error("criterion at exactly the threshold must survive")
	}
	if v := VerifySet(s, rows, 0.51); len(v.Criteria) != 0 {
		t.Error("criterion below the threshold must be removed")
	}
}

func TestInduceDeterministic(t *testing.T) {
	d := eduDataset()
	a := Induce(d, 0, allRows(d), []int{1}, DefaultInduceOptions())
	b := Induce(d, 0, allRows(d), []int{1}, DefaultInduceOptions())
	if len(a.Criteria) != len(b.Criteria) {
		t.Fatal("induction must be deterministic")
	}
	for i := range a.Criteria {
		if a.Criteria[i].Name != b.Criteria[i].Name || a.Criteria[i].Kind != b.Criteria[i].Kind {
			t.Fatal("criterion order/content must be deterministic")
		}
	}
}

func TestUnknownKindPasses(t *testing.T) {
	c := &Criterion{Kind: Kind("future"), Attr: "x"}
	if !c.Eval(row("x", "anything"), "x") {
		t.Error("unknown criterion kinds must default to pass (forward compatibility)")
	}
}
