package criteria_test

import (
	"fmt"

	"repro/internal/criteria"
)

// The Fig. 4 Flights example: an hour-range check expressed as a criterion
// instead of a generated Python function.
func ExampleCriterion_Eval() {
	c := &criteria.Criterion{
		Kind: criteria.KindRange, Attr: "ArrHour",
		Name: "is_clean_hour_range", Lo: 1, Hi: 12,
	}
	fmt.Println(c.Eval(map[string]string{"ArrHour": "7"}, "ArrHour"))
	fmt.Println(c.Eval(map[string]string{"ArrHour": "25"}, "ArrHour"))
	// Output:
	// true
	// false
}

// The Fig. 4 Hospital example: cross-attribute consistency via a
// dependency criterion.
func ExampleCriterion_Eval_crossAttribute() {
	c := &criteria.Criterion{
		Kind: criteria.KindFD, Attr: "Condition",
		Name:    "is_clean_consistent_with_measure_code",
		DetAttr: "MeasureCode",
		Mapping: map[string]string{"SCIP-INF-1": "surgical infection prevention"},
	}
	row := map[string]string{"MeasureCode": "SCIP-INF-1", "Condition": "pneumonia"}
	fmt.Println(c.Eval(row, "Condition"))
	// Output: false
}
