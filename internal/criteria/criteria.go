// Package criteria implements ZeroED's executable error-checking criteria
// (Section III-B). The paper has the LLM emit Python functions like
// `is_clean_hour_range(row, attr)`; offline we represent each criterion as
// a typed AST value with an Eval method over a tuple. Executing every
// criterion of an attribute against a cell yields the binary
// error-reason-aware feature vector f_cri, exactly as `exec(f_t, D[i,j])`
// does in the paper. Induction of criteria from serialized samples lives
// here too, because it is the "reasoning" the simulated LLM performs.
package criteria

import (
	"fmt"
	"strings"

	"repro/internal/table"
	"repro/internal/text"
)

// Kind enumerates criterion families. Each corresponds to an error reason
// the LLM might encode: nullability, format, domain membership, numeric
// range, cross-attribute consistency, and typo proximity.
type Kind string

// Criterion kinds, covering the paper's Fig. 4 examples (cross-attribute
// consistency for Hospital, value-range checks for Flights) and the common
// single-attribute reasons.
const (
	KindNotNull     Kind = "not_null"      // value is not a missing placeholder
	KindPattern     Kind = "pattern"       // L3 pattern is one of the frequent shapes
	KindDomain      Kind = "domain"        // value belongs to the frequent-value domain
	KindRange       Kind = "range"         // numeric value within [Lo, Hi]
	KindFD          Kind = "fd"            // row[DetAttr] -> expected value of this attr
	KindCharset     Kind = "charset"       // value contains only allowed char classes
	KindLength      Kind = "length"        // rune length within [MinLen, MaxLen]
	KindTypoDomain  Kind = "typo_domain"   // value is NOT a near-miss of a frequent value
	KindValueFreq   Kind = "value_freq"    // value occurs at least MinCount times
	KindNumericType Kind = "numeric_parse" // value parses as a number
)

// Criterion is one executable error-checking rule for a single attribute.
// Eval returns true when the value *passes* (looks clean), matching the
// paper's is_clean_* convention.
type Criterion struct {
	Kind Kind
	Attr string // the attribute this criterion validates
	Name string // human-readable identifier, e.g. "is_clean_hour_range"

	// Pattern / domain parameters.
	Patterns map[string]bool // allowed L3 patterns
	Domain   map[string]bool // allowed values (lowercased)

	// Range parameters.
	Lo, Hi float64

	// FD parameters: row[DetAttr] determines this attribute via Mapping.
	DetAttr string
	Mapping map[string]string

	// Charset: allowed character classes (subset of "LUDSW" letters used
	// by text.Generalize at L2/L3 granularity).
	AllowedClasses map[byte]bool

	// Length bounds (runes).
	MinLen, MaxLen int

	// TypoDomain: frequent values to compare against; a value within
	// MaxDist of a frequent value but not equal to it fails.
	TypoTargets []string
	MaxDist     int

	// ValueFreq: minimum occurrence count in the column, with counts
	// captured at induction time.
	MinCount int
	Counts   map[string]int
}

// String renders a short identifier for logs and token accounting.
func (c *Criterion) String() string {
	return fmt.Sprintf("%s(%s)", c.Name, c.Attr)
}

// RowDependent reports whether the criterion's verdict depends on other
// attributes of the tuple (true only for FD criteria). Verdicts of
// row-independent criteria can be memoized per unique value.
func (c *Criterion) RowDependent() bool { return c.Kind == KindFD }

// Eval executes the criterion against one tuple (as attribute→value map).
// It returns true when the cell passes the check. Missing-value handling:
// all kinds except NotNull treat null-like values as passing, so that the
// "missing" signal is carried by exactly one feature rather than polluting
// every criterion.
func (c *Criterion) Eval(row map[string]string, attr string) bool {
	v := row[attr]
	if c.Kind == KindFD && !text.IsNullLike(v) {
		return c.evalFD(v, row[c.DetAttr])
	}
	return c.EvalValue(v)
}

// EvalAt executes the criterion against tuple row of d, where col is the
// index of the criterion's attribute. It is the index-based evaluation
// hook: equivalent to Eval(d.RowMap(row), attr) but allocation-free, which
// matters because criteria run once per cell on the feature hot path.
func (c *Criterion) EvalAt(d *table.Dataset, row, col int) bool {
	v := d.Value(row, col)
	if c.Kind == KindFD && !text.IsNullLike(v) {
		det := ""
		if dc := d.ColIndex(c.DetAttr); dc >= 0 {
			det = d.Value(row, dc)
		}
		return c.evalFD(v, det)
	}
	return c.EvalValue(v)
}

func (c *Criterion) evalFD(v, det string) bool {
	want, ok := c.Mapping[det]
	if !ok {
		return true // unseen determinant: no evidence of violation
	}
	return v == want
}

// EvalValue executes the criterion against a bare value, ignoring tuple
// context. For every kind except FD this is the complete verdict; for FD it
// is the null-like fast path (nulls pass). Per-value-ID memo tables are
// built from this.
func (c *Criterion) EvalValue(v string) bool {
	if c.Kind == KindNotNull {
		return !text.IsNullLike(v)
	}
	if text.IsNullLike(v) {
		return true
	}
	switch c.Kind {
	case KindPattern:
		return c.Patterns[text.Generalize(v, text.L3)]
	case KindDomain:
		return c.Domain[strings.ToLower(v)]
	case KindRange:
		f, ok := text.ParseFloat(v)
		if !ok {
			return false
		}
		return f >= c.Lo && f <= c.Hi
	case KindCharset:
		for _, r := range v {
			cls := classOf(r)
			if !c.AllowedClasses[cls] {
				return false
			}
		}
		return true
	case KindLength:
		n := len([]rune(v))
		return n >= c.MinLen && n <= c.MaxLen
	case KindTypoDomain:
		for _, tgt := range c.TypoTargets {
			if v == tgt {
				return true
			}
		}
		for _, tgt := range c.TypoTargets {
			d := text.Levenshtein(strings.ToLower(v), strings.ToLower(tgt))
			if d > 0 && d <= c.MaxDist {
				return false // near-miss of a frequent value: likely typo
			}
		}
		return true
	case KindValueFreq:
		return c.Counts[v] >= c.MinCount
	case KindNumericType:
		_, ok := text.ParseFloat(v)
		return ok
	default:
		return true
	}
}

func classOf(r rune) byte {
	switch {
	case r >= '0' && r <= '9':
		return 'D'
	case (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		return 'L'
	case r == ' ' || r == '\t':
		return 'W'
	default:
		return 'S'
	}
}

// Set is the criteria set F_i for one attribute.
type Set struct {
	Attr     string
	Criteria []*Criterion
}

// Features executes every criterion against the tuple and returns the
// binary feature vector (1.0 pass / 0.0 fail), the f_cri of Section III-B.
func (s *Set) Features(row map[string]string) []float64 {
	out := make([]float64, len(s.Criteria))
	for i, c := range s.Criteria {
		if c.Eval(row, s.Attr) {
			out[i] = 1
		}
	}
	return out
}

// PassRate returns the fraction of criteria the tuple passes, used by
// Algorithm 1's data-verification step (Lines 15-20).
func (s *Set) PassRate(row map[string]string) float64 {
	if len(s.Criteria) == 0 {
		return 1
	}
	pass := 0
	for _, c := range s.Criteria {
		if c.Eval(row, s.Attr) {
			pass++
		}
	}
	return float64(pass) / float64(len(s.Criteria))
}

// PassRateAt is the index-based form of PassRate: it evaluates the set
// against tuple row of d without materializing a row map. col is the index
// of the set's attribute.
func (s *Set) PassRateAt(d *table.Dataset, row, col int) float64 {
	if len(s.Criteria) == 0 {
		return 1
	}
	pass := 0
	for _, c := range s.Criteria {
		if c.EvalAt(d, row, col) {
			pass++
		}
	}
	return float64(pass) / float64(len(s.Criteria))
}

// AccuracyOnClean evaluates one criterion against tuples believed clean and
// returns the fraction it passes — Algorithm 1's criteria-verification
// statistic (Lines 8-14). rows carries tuple maps; empty input yields 1.
func AccuracyOnClean(c *Criterion, attr string, rows []map[string]string) float64 {
	if len(rows) == 0 {
		return 1
	}
	pass := 0
	for _, r := range rows {
		if c.Eval(r, attr) {
			pass++
		}
	}
	return float64(pass) / float64(len(rows))
}

// AccuracyOnCleanAt is the index-based form of AccuracyOnClean: rows holds
// tuple indices into d, col the criterion's attribute index.
func AccuracyOnCleanAt(c *Criterion, d *table.Dataset, col int, rows []int) float64 {
	if len(rows) == 0 {
		return 1
	}
	pass := 0
	for _, r := range rows {
		if c.EvalAt(d, r, col) {
			pass++
		}
	}
	return float64(pass) / float64(len(rows))
}

// VerifySet removes criteria whose accuracy on believed-clean rows falls
// below threshold (the paper uses 0.5), returning the surviving set.
func VerifySet(s *Set, cleanRows []map[string]string, threshold float64) *Set {
	out := &Set{Attr: s.Attr}
	for _, c := range s.Criteria {
		if AccuracyOnClean(c, s.Attr, cleanRows) >= threshold {
			out.Criteria = append(out.Criteria, c)
		}
	}
	return out
}

// VerifySetAt is the index-based form of VerifySet: cleanRows holds tuple
// indices into d, col the set's attribute index.
func VerifySetAt(s *Set, d *table.Dataset, col int, cleanRows []int, threshold float64) *Set {
	out := &Set{Attr: s.Attr}
	for _, c := range s.Criteria {
		if AccuracyOnCleanAt(c, d, col, cleanRows) >= threshold {
			out.Criteria = append(out.Criteria, c)
		}
	}
	return out
}

// rowMaps converts dataset rows (by index) into tuple maps.
func rowMaps(d *table.Dataset, rows []int) []map[string]string {
	out := make([]map[string]string, len(rows))
	for i, r := range rows {
		out[i] = d.RowMap(r)
	}
	return out
}

// RowMaps is the exported helper used by the pipeline and baselines.
func RowMaps(d *table.Dataset, rows []int) []map[string]string { return rowMaps(d, rows) }
