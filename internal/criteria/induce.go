package criteria

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/text"
)

// InduceOptions tunes criterion induction from a data sample. Defaults
// reflect the conservative "only flag with high confidence" instruction in
// the paper's prompts.
type InduceOptions struct {
	// PatternCoverage: frequent L3 patterns are accumulated (most frequent
	// first) until this share of sampled values is covered; those patterns
	// become the allowed set.
	PatternCoverage float64
	// CategoricalMaxDistinctRatio: an attribute is treated as categorical
	// when distinct/sample values is below this ratio.
	CategoricalMaxDistinctRatio float64
	// RangeIQRFactor widens the numeric [Q1,Q3] window by this multiple of
	// the IQR on each side (Tukey-style fences).
	RangeIQRFactor float64
	// FDMinSupport is the minimum majority support for inducing an FD
	// criterion from a correlated attribute.
	FDMinSupport float64
	// TypoMaxDist bounds the edit distance for near-miss typo detection.
	TypoMaxDist int
	// MinFrequentCount is the minimum occurrences for a value to be a typo
	// target / domain member.
	MinFrequentCount int
}

// DefaultInduceOptions returns the defaults used by the pipeline.
func DefaultInduceOptions() InduceOptions {
	return InduceOptions{
		PatternCoverage:             0.90,
		CategoricalMaxDistinctRatio: 0.20,
		RangeIQRFactor:              3.0,
		FDMinSupport:                0.85,
		TypoMaxDist:                 2,
		MinFrequentCount:            2,
	}
}

// Induce derives the criteria set F_i for attribute j of d by analyzing
// the sampled rows (tuple indices into d) together with the correlated
// attributes corr (indices). This is the deterministic analogue of the
// paper's criteria-reasoning prompt: "given task description, common error
// descriptions, and serialized sample tuples, emit executable checks".
func Induce(d *table.Dataset, j int, sampleRows []int, corr []int, opt InduceOptions) *Set {
	attr := d.Attrs[j]
	set := &Set{Attr: attr}
	values := make([]string, len(sampleRows))
	for i, r := range sampleRows {
		values[i] = d.Value(r, j)
	}
	n := len(values)
	if n == 0 {
		return set
	}

	// 1. Nullability: only demand non-null when the sample is almost
	// entirely non-null (otherwise empties are plausibly legitimate).
	nulls := 0
	for _, v := range values {
		if text.IsNullLike(v) {
			nulls++
		}
	}
	if float64(nulls)/float64(n) < 0.3 {
		set.Criteria = append(set.Criteria, &Criterion{
			Kind: KindNotNull, Attr: attr, Name: "is_clean_not_null",
		})
	}

	nonNull := make([]string, 0, n)
	for _, v := range values {
		if !text.IsNullLike(v) {
			nonNull = append(nonNull, v)
		}
	}
	if len(nonNull) == 0 {
		return set
	}

	// 2. Pattern criterion: allow the most frequent L3 patterns up to the
	// coverage target.
	patCounts := map[string]int{}
	for _, v := range nonNull {
		patCounts[text.Generalize(v, text.L3)]++
	}
	allowed := coverSet(patCounts, len(nonNull), opt.PatternCoverage)
	if len(allowed) > 0 && len(allowed) < len(patCounts) {
		set.Criteria = append(set.Criteria, &Criterion{
			Kind: KindPattern, Attr: attr, Name: "is_clean_format", Patterns: allowed,
		})
	}

	// 3. Charset criterion: character classes seen in the dominant
	// patterns only.
	classes := map[byte]bool{}
	for _, v := range nonNull {
		if allowed == nil || allowed[text.Generalize(v, text.L3)] || len(allowed) == 0 {
			for _, r := range v {
				classes[classOf(r)] = true
			}
		}
	}
	if len(classes) > 0 && len(classes) < 4 {
		set.Criteria = append(set.Criteria, &Criterion{
			Kind: KindCharset, Attr: attr, Name: "is_clean_charset", AllowedClasses: classes,
		})
	}

	// 4. Length criterion from the sampled length distribution.
	lens := make([]float64, len(nonNull))
	for i, v := range nonNull {
		lens[i] = float64(len([]rune(v)))
	}
	lo := int(stats.Quantile(lens, 0.02))
	hi := int(stats.Quantile(lens, 0.98) + 0.5)
	if hi > lo {
		set.Criteria = append(set.Criteria, &Criterion{
			Kind: KindLength, Attr: attr, Name: "is_clean_length",
			MinLen: maxInt(lo-2, 0), MaxLen: hi + 2,
		})
	}

	// 5. Numeric attributes: range fences (the Flights hour-range example
	// of Fig. 4 is a special case of this).
	if text.IsNumericColumn(nonNull, 0.9) {
		nums := stats.NumericColumn(nonNull)
		q1 := stats.Quantile(nums, 0.25)
		q3 := stats.Quantile(nums, 0.75)
		iqr := q3 - q1
		span := iqr
		if span == 0 {
			span = (q3 + q1) * 0.25
			if span < 1 {
				span = 1
			}
		}
		set.Criteria = append(set.Criteria, &Criterion{
			Kind: KindRange, Attr: attr, Name: "is_clean_value_range",
			Lo: q1 - opt.RangeIQRFactor*span, Hi: q3 + opt.RangeIQRFactor*span,
		})
		set.Criteria = append(set.Criteria, &Criterion{
			Kind: KindNumericType, Attr: attr, Name: "is_clean_numeric",
		})
	} else {
		// 6. Categorical attributes: domain + typo proximity.
		distinct := map[string]int{}
		for _, v := range nonNull {
			distinct[strings.ToLower(v)]++
		}
		if float64(len(distinct))/float64(len(nonNull)) <= opt.CategoricalMaxDistinctRatio {
			domain := map[string]bool{}
			var typoTargets []string
			for v, c := range distinct {
				if c >= opt.MinFrequentCount {
					domain[v] = true
				}
			}
			for _, v := range nonNull {
				if distinct[strings.ToLower(v)] >= opt.MinFrequentCount {
					typoTargets = append(typoTargets, v)
				}
			}
			typoTargets = dedupe(typoTargets)
			if len(domain) > 0 {
				set.Criteria = append(set.Criteria, &Criterion{
					Kind: KindDomain, Attr: attr, Name: "is_clean_in_domain", Domain: domain,
				})
			}
			if len(typoTargets) > 0 {
				set.Criteria = append(set.Criteria, &Criterion{
					Kind: KindTypoDomain, Attr: attr, Name: "is_clean_no_near_miss",
					TypoTargets: typoTargets, MaxDist: opt.TypoMaxDist,
				})
			}
		}
	}

	// 7. FD criteria against correlated attributes (the Hospital
	// MeasureCode consistency example of Fig. 4). Mappings are induced
	// from the full dataset restricted to the sampled rows.
	// Build the sample as a fresh table rather than via SubsetRows: the
	// latter copies every column's full intern pool, which is wasteful for
	// a ~30-row sample over Tax-scale dicts.
	sub := table.NewWithCapacity(d.Name, d.Attrs, len(sampleRows))
	for _, r := range sampleRows {
		sub.MustAppendRow(d.Row(r))
	}
	for _, q := range corr {
		if q == j {
			continue
		}
		fd := stats.FindFD(sub, q, j)
		if fd.Support >= opt.FDMinSupport && len(fd.Mapping) > 0 {
			set.Criteria = append(set.Criteria, &Criterion{
				Kind: KindFD, Attr: attr,
				Name:    fmt.Sprintf("is_clean_consistent_with_%s", sanitize(d.Attrs[q])),
				DetAttr: d.Attrs[q], Mapping: fd.Mapping,
			})
		}
	}
	return set
}

// Refine performs the contrastive in-context enhancement of Algorithm 1
// (Lines 4-7): given values labeled clean and values labeled erroneous for
// the attribute, it tightens or relaxes the criteria so that clean values
// pass and known errors fail where possible. It returns a new Set; the
// input is not mutated.
func Refine(s *Set, cleanVals, errVals []string) *Set {
	out := &Set{Attr: s.Attr}
	for _, c := range s.Criteria {
		rc := *c // shallow copy; maps are rebuilt below when mutated
		switch c.Kind {
		case KindDomain:
			// Remove error values from the allowed domain; admit clean
			// values the sample missed.
			nd := map[string]bool{}
			for v := range c.Domain {
				nd[v] = true
			}
			for _, v := range cleanVals {
				if !text.IsNullLike(v) {
					nd[strings.ToLower(v)] = true
				}
			}
			for _, v := range errVals {
				delete(nd, strings.ToLower(v))
			}
			rc.Domain = nd
		case KindPattern:
			np := map[string]bool{}
			for p := range c.Patterns {
				np[p] = true
			}
			for _, v := range cleanVals {
				if !text.IsNullLike(v) {
					np[text.Generalize(v, text.L3)] = true
				}
			}
			// Only drop a pattern on error evidence when no clean value
			// shares it.
			cleanPats := map[string]bool{}
			for _, v := range cleanVals {
				cleanPats[text.Generalize(v, text.L3)] = true
			}
			for _, v := range errVals {
				p := text.Generalize(v, text.L3)
				if !cleanPats[p] {
					delete(np, p)
				}
			}
			rc.Patterns = np
		case KindRange:
			// Expand to include all clean numerics.
			for _, v := range cleanVals {
				if f, ok := text.ParseFloat(v); ok {
					if f < rc.Lo {
						rc.Lo = f
					}
					if f > rc.Hi {
						rc.Hi = f
					}
				}
			}
		case KindTypoDomain:
			targets := append([]string(nil), c.TypoTargets...)
			for _, v := range cleanVals {
				if !text.IsNullLike(v) {
					targets = append(targets, v)
				}
			}
			rc.TypoTargets = dedupe(targets)
		}
		out.Criteria = append(out.Criteria, &rc)
	}
	return out
}

// coverSet returns the smallest prefix of patterns (by descending count)
// whose cumulative share reaches coverage.
func coverSet(counts map[string]int, total int, coverage float64) map[string]bool {
	type pc struct {
		p string
		c int
	}
	ps := make([]pc, 0, len(counts))
	for p, c := range counts {
		ps = append(ps, pc{p, c})
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].c != ps[b].c {
			return ps[a].c > ps[b].c
		}
		return ps[a].p < ps[b].p
	})
	out := map[string]bool{}
	acc := 0
	for _, e := range ps {
		if float64(acc)/float64(total) >= coverage {
			break
		}
		out[e.p] = true
		acc += e.c
	}
	return out
}

func dedupe(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			return r
		}
		return '_'
	}, s)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
